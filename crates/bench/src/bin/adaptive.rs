//! Adaptive-policy sweep: static mechanisms versus the runtime
//! controller under reactive foreground traffic with hotspot
//! interference.
//!
//! The adaptive controller (DESIGN.md §14) only pays for itself when no
//! single static choice is right for the whole run, so this bench drives
//! the [`Network`] with exactly that shape: a **continuous light
//! foreground** of uniform-random request/reply pairs — the reactive
//! traffic circuits are built for, measured end to end as a round-trip
//! time — against **phased hotspot salvos** of one-way `FwdRequest`
//! background traffic (a bounded budget per node per burst phase) that
//! jam the request virtual network around a mid-mesh node. In the calm phases `Fragmented` circuits win (extra
//! buffered reply VC plus circuit hits); during the bursts the circuit
//! machinery around the hot column becomes pure overhead and the
//! detour/suppression policies pay off on the foreground's request leg.
//!
//! Each mix runs three rows: `static/baseline`, `static/fragmented` and
//! `adaptive/fragmented` (the same hardware as the second row with the
//! controller switched on, default knobs). The decision metrics are the
//! **foreground round-trip time** (request injection to reply delivery,
//! harness-timed — network reply-latency alone misses the jam damage on
//! the request leg) and **foreground goodput** over the driven window.
//! The bench asserts the adaptive row beats **both** statics on p99
//! round-trip or on goodput at one or more mixes — the tentpole
//! acceptance criterion.
//!
//! Knobs: `RC_ADAPT_PHASES` (calm/burst phase pairs per run, default 6),
//! `RC_ADAPT_WINDOW` (outstanding foreground requests per node, default
//! 4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcsim_bench::{save_bench_summary, save_json, BenchRow, BenchSummary};
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{AdaptiveConfig, MechanismConfig, MessageClass, NodeId, TopologySpec};
use rcsim_noc::traffic::{Generator, Pattern};
use rcsim_noc::{MessageGroup, Network, NocConfig, PacketSpec};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Modeled L2 turnaround: cycles between a request's delivery and the
/// injection of its reply.
const TURNAROUND: u64 = 7;

fn phase_pairs() -> u32 {
    std::env::var("RC_ADAPT_PHASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
}

fn window_outstanding() -> u32 {
    std::env::var("RC_ADAPT_WINDOW")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

/// One traffic mix: the calm/burst phase lengths (background bursts run
/// only during the burst phases; the foreground never stops).
struct Mix {
    name: &'static str,
    calm_cycles: u64,
    burst_cycles: u64,
}

const MIXES: [Mix; 2] = [
    Mix {
        name: "calm_heavy",
        calm_cycles: 1_500,
        burst_cycles: 300,
    },
    Mix {
        name: "burst_heavy",
        calm_cycles: 300,
        burst_cycles: 700,
    },
];

struct Measured {
    rtt_avg: f64,
    rtt_p99: f64,
    rtt_p999: f64,
    net_avg: f64,
    net_p99: f64,
    hit_rate: f64,
    goodput: f64,
    switches: u64,
    congestion_detours: u64,
    circuits_suppressed: u64,
    circuits_torn: u64,
}

/// Closed-loop harness state: per-node outstanding windows, the modeled
/// L2 reply queue, and the foreground round-trip ledger.
struct Harness {
    fg_out: Vec<u32>,
    bg_out: Vec<u32>,
    replies: VecDeque<(u64, NodeId, NodeId, u64)>,
    fg_done: u64,
    born: HashMap<u64, u64>,
    rtt: Vec<u64>,
}

impl Harness {
    fn new(nodes: usize) -> Self {
        Harness {
            fg_out: vec![0; nodes],
            bg_out: vec![0; nodes],
            replies: VecDeque::new(),
            fg_done: 0,
            born: HashMap::new(),
            rtt: Vec::new(),
        }
    }

    /// Consumes deliveries: foreground requests queue a circuit-riding
    /// reply after the modeled turnaround, delivered replies close the
    /// round trip, background deliveries just release their window slot.
    fn echo(&mut self, net: &mut Network) {
        let now = net.now();
        for (node, d) in net.take_all_delivered() {
            match d.class {
                MessageClass::L1Request => {
                    self.replies
                        .push_back((now + TURNAROUND, node, d.src, d.block));
                }
                MessageClass::L2Reply => {
                    self.fg_out[node.0 as usize] -= 1;
                    self.fg_done += 1;
                    if let Some(b) = self.born.remove(&d.block) {
                        self.rtt.push(now - b);
                    }
                }
                MessageClass::FwdRequest => self.bg_out[d.src.0 as usize] -= 1,
                other => panic!("unexpected class {other}"),
            }
        }
        while self.replies.front().is_some_and(|&(at, ..)| at <= now) {
            let (_, node, dst, block) = self.replies.pop_front().unwrap();
            let key = CircuitKey {
                requestor: dst,
                block,
            };
            net.inject(
                PacketSpec::new(node, dst, MessageClass::L2Reply)
                    .with_block(block)
                    .with_circuit_key(key),
            );
        }
    }
}

/// Sorted-slice percentile (nearest-rank on the driven-window samples).
fn percentile(sorted: &[u64], pct: usize) -> f64 {
    sorted
        .get(sorted.len().saturating_sub(1) * pct / 1_000)
        .copied()
        .unwrap_or(0) as f64
}

/// Drives one row over the phased mix, then drains to quiescence with
/// the usual deadlock-freedom asserts. `adaptive` switches the
/// controller on (same hardware otherwise).
fn run_row(mechanism: MechanismConfig, mix: &Mix, adaptive: Option<AdaptiveConfig>) -> Measured {
    let topology = TopologySpec::Mesh.build(64).expect("8x8 mesh");
    let cfg = NocConfig::paper_baseline(topology, mechanism);
    let mut net = Network::new(cfg).expect("valid config");
    if let Some(ad) = adaptive {
        net.enable_adaptive(ad).expect("valid adaptive config");
    }
    let mut rng = StdRng::seed_from_u64(0xADA7);
    let n = topology.nodes() as u16;
    let fg_win = window_outstanding();
    // Each node fires a bounded salvo of background requests per burst
    // phase: enough to jam the hotspot column for a while, small enough
    // that the jam drains before the next phase.
    let bg_salvo = 16u32;
    let mut bg_budget = vec![0u32; n as usize];
    let mut h = Harness::new(n as usize);
    let mut block = 0u64;
    // The hot node sits mid-mesh so burst traffic crosses the interior.
    let hotspot = NodeId(n / 2 + 4);
    let fg = Generator {
        pattern: Pattern::UniformRandom,
        injection_rate: 0.02,
        class: MessageClass::L1Request,
    };
    let bg = Generator {
        pattern: Pattern::Hotspot {
            target: hotspot,
            percent: 80,
        },
        injection_rate: 0.5,
        class: MessageClass::FwdRequest,
    };
    for _ in 0..phase_pairs() {
        for (bursting, cycles) in [(false, mix.calm_cycles), (true, mix.burst_cycles)] {
            if bursting {
                bg_budget.iter_mut().for_each(|b| *b = bg_salvo);
            }
            for _ in 0..cycles {
                for s in 0..n {
                    let src = NodeId(s);
                    if h.fg_out[s as usize] < fg_win && rng.gen_bool(fg.injection_rate) {
                        let dst = fg.destination(&net, src, &mut rng);
                        if dst != src {
                            block += 64;
                            net.inject(
                                PacketSpec::new(src, dst, MessageClass::L1Request)
                                    .with_block(block)
                                    .with_turnaround(TURNAROUND as u32),
                            );
                            h.fg_out[s as usize] += 1;
                            h.born.insert(block, net.now());
                        }
                    }
                    if bursting && bg_budget[s as usize] > 0 && rng.gen_bool(bg.injection_rate) {
                        let dst = bg.destination(&net, src, &mut rng);
                        if dst != src {
                            net.inject(PacketSpec::new(src, dst, MessageClass::FwdRequest));
                            bg_budget[s as usize] -= 1;
                            h.bg_out[s as usize] += 1;
                        }
                    }
                }
                net.tick();
                h.echo(&mut net);
            }
        }
    }
    // Goodput and round trips count the driven window only; the drain
    // tail below exists for the deadlock-freedom assert, not the
    // measurement.
    let drive_cycles = net.now();
    let fg_done_driven = h.fg_done;
    let rtt_driven = h.rtt.len();
    let deadline = net.now() + 2_000_000;
    while (!net.is_quiescent() || !h.replies.is_empty()) && net.now() < deadline {
        net.tick();
        h.echo(&mut net);
    }
    let health = net.health();
    assert!(
        net.is_quiescent(),
        "{}/{}: not quiescent after drain\n{health}",
        mix.name,
        mechanism.label()
    );
    assert_eq!(
        health.faults.packets_abandoned,
        0,
        "{}/{}: abandoned packets",
        mix.name,
        mechanism.label()
    );
    assert!(
        h.fg_out.iter().all(|&o| o == 0) && h.bg_out.iter().all(|&o| o == 0),
        "{}/{}: lost deliveries",
        mix.name,
        mechanism.label()
    );
    let stats = net.stats();
    let lat = stats.network_latency.get(&MessageGroup::CircuitRep);
    h.rtt.truncate(rtt_driven);
    h.rtt.sort_unstable();
    Measured {
        rtt_avg: h.rtt.iter().sum::<u64>() as f64 / h.rtt.len().max(1) as f64,
        rtt_p99: percentile(&h.rtt, 990),
        rtt_p999: percentile(&h.rtt, 999),
        net_avg: lat.map_or(0.0, |l| l.mean()),
        net_p99: lat.and_then(|l| l.p99()).unwrap_or(0.0),
        hit_rate: stats.outcome_fraction(rcsim_noc::CircuitOutcome::OnCircuit),
        goodput: fg_done_driven as f64 / (topology.nodes() as f64 * drive_cycles as f64),
        switches: health.adaptive.hot_switches + health.adaptive.calm_switches,
        congestion_detours: health.adaptive.congestion_detours,
        circuits_suppressed: health.adaptive.circuits_suppressed,
        circuits_torn: health.adaptive.circuits_torn_on_switch,
    }
}

fn main() {
    let pairs = phase_pairs();
    println!("Adaptive-policy sweep (RC_ADAPT_PHASES={pairs})\n");
    println!(
        "{:<12} {:<22} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "mix", "row", "circuit%", "rtt avg", "rtt p99", "goodput", "switches"
    );
    let mut summary = BenchSummary::new("adaptive");
    let mut raw = Vec::new();
    let mut adaptive_won = false;
    for mix in &MIXES {
        let rows = [
            ("static/baseline", MechanismConfig::baseline(), None),
            ("static/fragmented", MechanismConfig::fragmented(), None),
            (
                "adaptive/fragmented",
                MechanismConfig::fragmented(),
                Some(AdaptiveConfig::default()),
            ),
        ];
        let mut static_best_p99 = f64::INFINITY;
        let mut static_best_goodput = 0.0f64;
        for (name, mechanism, adaptive) in rows {
            let is_adaptive = adaptive.is_some();
            let m = run_row(mechanism, mix, adaptive);
            println!(
                "{:<12} {:<22} {:>8.1}% {:>9.1} {:>9.1} {:>9.5} {:>9}",
                mix.name,
                name,
                100.0 * m.hit_rate,
                m.rtt_avg,
                m.rtt_p99,
                m.goodput,
                m.switches
            );
            if is_adaptive {
                if m.rtt_p99 < static_best_p99 || m.goodput > static_best_goodput {
                    adaptive_won = true;
                }
                assert!(
                    m.switches > 0,
                    "{}: controller never switched — the mix is not adversarial enough",
                    mix.name
                );
            } else {
                static_best_p99 = static_best_p99.min(m.rtt_p99);
                static_best_goodput = static_best_goodput.max(m.goodput);
            }
            summary.push(BenchRow {
                label: format!("{}/{}", mix.name, name),
                cores: 64,
                topology: "mesh".to_owned(),
                avg_latency: m.rtt_avg,
                p99_latency: m.rtt_p99,
                p999_latency: m.rtt_p999,
                circuit_hit_rate: m.hit_rate.clamp(0.0, 1.0),
                extra: BTreeMap::from([
                    ("goodput".to_owned(), m.goodput),
                    ("net_avg_latency".to_owned(), m.net_avg),
                    ("net_p99_latency".to_owned(), m.net_p99),
                    ("switches".to_owned(), m.switches as f64),
                    ("congestion_detours".to_owned(), m.congestion_detours as f64),
                    (
                        "circuits_suppressed".to_owned(),
                        m.circuits_suppressed as f64,
                    ),
                    ("circuits_torn_on_switch".to_owned(), m.circuits_torn as f64),
                ]),
            });
            raw.push((
                mix.name,
                name,
                m.rtt_p99,
                m.goodput,
                m.switches,
                m.congestion_detours,
            ));
        }
    }
    assert!(
        adaptive_won,
        "adaptive beat neither static row on p99 round-trip nor goodput at any mix"
    );
    println!("\n(adaptive = fragmented hardware + runtime controller: circuit hits in the");
    println!(" calm phases, suppression + detours around the hotspot during the bursts;");
    println!(" latencies are foreground request->reply round trips, harness-timed)");
    save_json("adaptive_sweep", &raw);
    save_bench_summary(&mut summary);
}
