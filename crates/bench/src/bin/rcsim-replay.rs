//! Loads a checkpoint file — typically a `wedged-*.ckpt` auto-dumped by
//! the watchdog when a run stalls with `RC_CKPT_DIR` set — rebuilds the
//! chip from it, and prints the saved position, the embedded
//! configuration and the full health report, including the wait-for-graph
//! deadlock diagnosis when the network is wedged.
//!
//! Usage: `rcsim-replay <file.ckpt> [extra_cycles]` — with a cycle count,
//! the chip is additionally advanced that many cycles before the health
//! dump (watching whether a suspected livelock moves). Exits non-zero on
//! an unreadable or corrupt checkpoint.

use rcsim_system::{KernelMode, SessionSnapshot, SimSession};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: rcsim-replay <file.ckpt> [extra_cycles]");
        return ExitCode::FAILURE;
    };
    let extra: u64 = match args.next().map(|v| v.parse()) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("rcsim-replay: extra_cycles must be an integer");
            return ExitCode::FAILURE;
        }
    };

    let Some(snap) = SessionSnapshot::load(std::path::Path::new(&path)) else {
        eprintln!("rcsim-replay: {path}: missing, corrupt, or stale-version checkpoint");
        return ExitCode::FAILURE;
    };
    println!(
        "checkpoint: cycle {} of {}",
        snap.pos(),
        snap.config().warmup_cycles + snap.config().measure_cycles
    );
    match serde_json::to_string_pretty(snap.config()) {
        Ok(json) => println!("config:\n{json}"),
        Err(e) => eprintln!("rcsim-replay: config failed to serialize: {e}"),
    }

    let mut session = match SimSession::resume(&snap, KernelMode::from_env(), 1) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rcsim-replay: checkpoint no longer builds: {e}");
            return ExitCode::FAILURE;
        }
    };
    if extra > 0 {
        let target = (session.pos() + extra).min(session.total());
        println!("advancing {} cycles...", target - session.pos());
        // A stall here is expected — inspecting stalls is the point.
        let _ = session.run_until(target);
        println!("now at cycle {}", session.pos());
    }
    println!("{}", session.chip().health());
    ExitCode::SUCCESS
}
