//! Table 6 — router area savings per mechanism version (analytical model;
//! no simulation needed).

use rcsim_bench::{save_bench_summary, save_json, BenchRow, BenchSummary};
use rcsim_core::MechanismConfig;
use rcsim_power::{area_savings, RouterArea};
use std::collections::BTreeMap;

fn main() {
    println!("Table 6 — router area savings vs the baseline 4-VC router\n");
    let rows: [(&str, MechanismConfig, f64, f64); 3] = [
        ("Fragmented", MechanismConfig::fragmented(), -19.28, -18.96),
        ("Complete", MechanismConfig::complete(), 6.21, 5.77),
        ("Complete Timed", MechanismConfig::timed_noack(), 3.38, 1.09),
    ];

    println!("{:<16} {:>18} {:>18}", "version", "16 cores", "64 cores");
    println!(
        "{:<16} {:>9} {:>8} {:>9} {:>8}",
        "", "paper", "model", "paper", "model"
    );
    let mut out = Vec::new();
    let mut summary = BenchSummary::new("table6");
    for (name, mechanism, p16, p64) in rows {
        let m16 = 100.0 * area_savings(&mechanism, 16);
        let m64 = 100.0 * area_savings(&mechanism, 64);
        println!(
            "{:<16} {:>8.2}% {:>7.2}% {:>8.2}% {:>7.2}%",
            name, p16, m16, p64, m64
        );
        // Analytical model — no simulated traffic, so the latency fields
        // stay at zero and the payload lives in `extra`.
        for (cores, modeled, paper) in [(16usize, m16, p16), (64, m64, p64)] {
            summary.push(BenchRow {
                label: name.to_owned(),
                cores,
                topology: "mesh".to_owned(),
                avg_latency: 0.0,
                p99_latency: 0.0,
                p999_latency: 0.0,
                circuit_hit_rate: 0.0,
                extra: BTreeMap::from([
                    ("area_savings_pct".to_owned(), modeled),
                    ("paper_pct".to_owned(), paper),
                ]),
            });
        }
        out.push((name, m16, m64));
    }
    save_bench_summary(&mut summary);

    println!("\nBaseline router component shares (64 cores):");
    let base = RouterArea::for_mechanism(&MechanismConfig::baseline(), 64);
    for (name, share) in base.shares() {
        println!("  {:<16} {:>5.1}%", name, 100.0 * share);
    }
    save_json("table6", &out);
}
