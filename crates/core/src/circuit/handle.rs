//! The circuit-construction record carried in a request's header.

use super::timing;
use crate::types::{Cycle, NodeId};
use serde::{Deserialize, Serialize};

/// Identity of a circuit as stored at routers: the requestor (the reply's
/// destination) plus the cache-line address (§4.1 — "requestor identifier
/// and cache line address").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CircuitKey {
    /// The node that issued the request and will receive the reply.
    pub requestor: NodeId,
    /// The cache-line address the transaction concerns.
    pub block: u64,
}

/// Scalar summary of every reserved window along the path (see the module
/// docs of [`timing`]): the reply can use the circuit iff it is injected at
/// some `T` with `lower ≤ T ≤ upper`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingState {
    /// Latest window lower bound seen so far (`max_R n_R + shift_R`).
    pub lower: Cycle,
    /// Earliest window upper bound seen so far (`min_R n_R + shift_R + S`).
    pub upper: Cycle,
    /// Current reservation shift (postponement plus accumulated delay).
    pub shift: u32,
    /// Upper limit on `shift` (postponement + delay budget).
    pub max_shift: u32,
}

impl TimingState {
    /// A fresh state before any reservation: the feasible interval is
    /// unbounded.
    pub fn new(initial_shift: u32, max_shift: u32) -> Self {
        Self {
            lower: 0,
            upper: Cycle::MAX,
            shift: initial_shift,
            max_shift,
        }
    }

    /// Narrows the feasible interval with one router's reservation
    /// (`nominal` inject estimate, current `shift`, `slack` width).
    pub fn narrow(&mut self, nominal: Cycle, slack: u32) {
        let s = self.shift as Cycle;
        self.lower = self.lower.max(nominal + s);
        self.upper = self.upper.min(nominal + s + slack as Cycle);
    }

    /// `true` while some injection time can still satisfy every window.
    pub fn feasible(&self) -> bool {
        self.lower <= self.upper
    }

    /// The injection time the reply must use if ready at `ready`:
    /// it waits for the latest window start. `None` if the circuit can no
    /// longer be used (ready too late, or the interval collapsed).
    pub fn injection_time(&self, ready: Cycle) -> Option<Cycle> {
        let t = ready.max(self.lower);
        (self.feasible() && t <= self.upper).then_some(t)
    }
}

/// Construction state of one circuit, carried in the request header as it
/// travels and finally handed to the reply sender's network interface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitHandle {
    /// Circuit identity (also the router-table lookup key).
    pub key: CircuitKey,
    /// The reply sender (= the request's destination).
    pub source: NodeId,
    /// Total hops of the request path.
    pub path_hops: u32,
    /// Routers successfully reserved so far.
    pub built_hops: u32,
    /// Set when a complete-mode reservation failed; no further routers are
    /// reserved and the built prefix is undone.
    pub failed: bool,
    /// Timed-window state (`None` for untimed circuits).
    pub timing: Option<TimingState>,
    /// Number of flits of the reply this circuit is for.
    pub reply_flits: u32,
    /// Expected responder turnaround in cycles (L2 hit or memory latency).
    pub turnaround: u32,
}

impl CircuitHandle {
    /// Starts a circuit record for a request from `requestor` about line
    /// `block`, travelling `path_hops` hops to `source` (the reply sender).
    pub fn new(
        requestor: NodeId,
        block: u64,
        source: NodeId,
        path_hops: u32,
        reply_flits: u32,
        turnaround: u32,
    ) -> Self {
        Self {
            key: CircuitKey { requestor, block },
            source,
            path_hops,
            built_hops: 0,
            failed: false,
            timing: None,
            reply_flits,
            turnaround,
        }
    }

    /// Arms the timed-window state according to a policy.
    pub fn with_policy(mut self, policy: crate::config::TimedPolicy) -> Self {
        if policy.is_timed() {
            let postpone = policy.postponement(self.path_hops);
            let max_shift = postpone + policy.max_delay(self.path_hops);
            self.timing = Some(TimingState::new(postpone, max_shift));
        }
        self
    }

    /// `true` when every router on the path was reserved: a path of
    /// `path_hops` link hops crosses `path_hops + 1` routers, each of
    /// which holds one reservation.
    pub fn fully_built(&self) -> bool {
        !self.failed && self.built_hops == self.path_hops + 1
    }

    /// Nominal reply-injection estimate from a router `req_hops_remaining`
    /// hops before the destination at local time `now`.
    pub fn nominal_at(&self, now: Cycle, req_hops_remaining: u32) -> Cycle {
        timing::nominal_inject(now, req_hops_remaining, self.turnaround)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimedPolicy;

    fn handle(path_hops: u32) -> CircuitHandle {
        CircuitHandle::new(NodeId(1), 0x40, NodeId(9), path_hops, 5, 7)
    }

    #[test]
    fn untimed_handle_has_no_timing() {
        let h = handle(4).with_policy(TimedPolicy::Untimed);
        assert!(h.timing.is_none());
        assert!(!h.fully_built());
    }

    #[test]
    fn policy_budgets_scale_with_path() {
        let h = handle(4).with_policy(TimedPolicy::SlackDelay {
            slack_per_hop: 1,
            delay_per_hop: 2,
        });
        let t = h.timing.unwrap();
        assert_eq!(t.shift, 0);
        assert_eq!(t.max_shift, 8);

        let h = handle(4).with_policy(TimedPolicy::Postponed {
            postpone_per_hop: 3,
        });
        let t = h.timing.unwrap();
        assert_eq!(t.shift, 12);
        assert_eq!(t.max_shift, 12);
    }

    #[test]
    fn narrowing_tracks_bounds() {
        let mut t = TimingState::new(0, 0);
        t.narrow(100, 6);
        assert_eq!((t.lower, t.upper), (100, 106));
        t.narrow(103, 6); // a delayed router estimate
        assert_eq!((t.lower, t.upper), (103, 106));
        assert!(t.feasible());
        t.narrow(110, 6); // delay beyond the slack: infeasible
        assert!(!t.feasible());
    }

    #[test]
    fn injection_waits_for_window() {
        let mut t = TimingState::new(0, 0);
        t.narrow(100, 6);
        assert_eq!(t.injection_time(90), Some(100)); // early reply waits
        assert_eq!(t.injection_time(104), Some(104)); // in-window
        assert_eq!(t.injection_time(107), None); // too late
    }

    #[test]
    fn shift_translates_bounds() {
        let mut t = TimingState::new(10, 10);
        t.narrow(100, 0);
        assert_eq!((t.lower, t.upper), (110, 110));
        assert_eq!(t.injection_time(0), Some(110)); // forced postponement wait
    }

    #[test]
    fn fully_built_requires_all_routers() {
        let mut h = handle(3);
        h.built_hops = 3;
        assert!(!h.fully_built(), "3 hops cross 4 routers");
        h.built_hops = 4;
        assert!(h.fully_built());
        h.failed = true;
        assert!(!h.fully_built());
    }

    #[test]
    fn nominal_estimate() {
        let h = handle(3);
        assert_eq!(h.nominal_at(50, 2), 50 + 10 + 7);
    }
}
