//! Chip assembly: one tile per topology node (core + L1 + L2 bank +
//! router, plus a memory controller on four edge tiles — Figure 1),
//! wired to the cycle-accurate NoC through an adapter implementing the
//! protocol's [`Port`].

use crate::core_model::{Core, CoreAction, CoreSnapshot};
use crate::open_loop::{OpenLoopConfig, OpenLoopSnapshot, OpenLoopState, EXT_TOKEN_BIT};
use crate::report::ExternalSummary;
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{Cycle, KernelMode, MechanismConfig, MessageClass, NodeId, Topology};
use rcsim_noc::{
    CircuitOutcome, FaultConfig, HealthReport, Network, NetworkSnapshot, NocConfig, NocStats,
    PacketSpec, WatchdogConfig,
};
use rcsim_protocol::{
    Access, L1Cache, L1Snapshot, L2Bank, L2Snapshot, MemSnapshot, MemoryController, Msg, Port,
    ProtocolConfig,
};
use rcsim_trace::{EventKind, TraceEvent, TraceSink};
use rcsim_workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Bridges the protocol state machines to the NoC: attaches circuit keys
/// to eligible replies, reports NoAck commits, forwards undos and keeps
/// the Figure 6 outcome accounting consistent (see DESIGN.md).
struct ChipPort<'a> {
    net: &'a mut Network,
    payloads: &'a mut HashMap<u64, Msg>,
    next_token: &'a mut u64,
    undone: &'a mut HashSet<CircuitKey>,
    node: NodeId,
    circuits_enabled: bool,
    track_undone: bool,
}

impl Port for ChipPort<'_> {
    fn now(&self) -> Cycle {
        self.net.now()
    }

    fn send(&mut self, msg: Msg, turnaround: u32) -> bool {
        let token = *self.next_token;
        *self.next_token += 1;
        self.payloads.insert(token, msg);
        let mut spec = PacketSpec::new(msg.src, msg.dst, msg.class)
            .with_block(msg.block)
            .with_token(token)
            .with_turnaround(turnaround);
        if msg.short {
            spec = spec.with_flits(1);
        }
        if self.circuits_enabled {
            if msg.class.is_reply() && msg.class.circuit_eligible() {
                let key = CircuitKey {
                    requestor: msg.dst,
                    block: msg.block,
                };
                if self.undone.remove(&key) {
                    // The §4.4 ablation already classified this reply as
                    // `undone` when the circuit was torn down at L2 miss.
                    spec = spec.without_outcome();
                } else {
                    spec = spec.with_circuit_key(key);
                }
            }
            if msg.class == MessageClass::L1ToL1 {
                // The forwarded transaction's circuit fate (undone or
                // failed) was recorded when the L2 forwarded the request.
                spec = spec.without_outcome();
            }
        }
        let (_, committed) = self.net.inject(spec);
        committed
    }

    fn undo_circuit(&mut self, key: CircuitKey) {
        if self.net.undo_circuit(self.node, key) {
            if self.track_undone {
                self.undone.insert(key);
            }
        } else if self.circuits_enabled {
            // The circuit had already failed mid-path: the transaction's
            // logical reply still belongs in the Figure 6 breakdown.
            self.net.record_reply_outcome(CircuitOutcome::Failed);
        }
    }

    fn record_eliminated_ack(&mut self) {
        self.net.record_eliminated_ack();
    }
}

/// The full chip multiprocessor.
pub struct Chip {
    topology: Topology,
    proto_cfg: ProtocolConfig,
    net: Network,
    cores: Vec<Core>,
    l1s: Vec<L1Cache>,
    l2s: Vec<L2Bank>,
    mcs: HashMap<usize, MemoryController>,
    payloads: HashMap<u64, Msg>,
    next_token: u64,
    undone: HashSet<CircuitKey>,
    /// Where trace events go; disabled by default.
    sink: TraceSink,
    /// Cycles between whole-network occupancy samples (0 = never).
    trace_epoch: u64,
    /// Dense (tick everything) or event-driven (skip quiescent tiles).
    kernel: KernelMode,
    /// Open-loop external-traffic driver; `None` for closed-loop runs.
    open_loop: Option<Box<OpenLoopState>>,
}

impl Chip {
    /// Assembles a chip for a workload.
    ///
    /// # Errors
    ///
    /// Propagates mechanism-configuration validation errors.
    pub fn new(
        topology: impl Into<Topology>,
        mechanism: MechanismConfig,
        proto_cfg: ProtocolConfig,
        workload: &Workload,
    ) -> Result<Self, rcsim_core::ConfigError> {
        Chip::with_faults(
            topology,
            mechanism,
            proto_cfg,
            workload,
            FaultConfig::none(),
            WatchdogConfig::default(),
        )
    }

    /// Assembles a chip with a fault-injection configuration and watchdog
    /// thresholds. `FaultConfig::none()` is exactly [`Chip::new`].
    ///
    /// # Errors
    ///
    /// Propagates mechanism-configuration validation errors.
    pub fn with_faults(
        topology: impl Into<Topology>,
        mechanism: MechanismConfig,
        mut proto_cfg: ProtocolConfig,
        workload: &Workload,
        faults: FaultConfig,
        watchdog: WatchdogConfig,
    ) -> Result<Self, rcsim_core::ConfigError> {
        let topology = topology.into();
        mechanism.validate()?;
        assert_eq!(workload.cores(), topology.nodes(), "one thread per core");
        proto_cfg.eliminate_acks = mechanism.eliminate_acks;
        proto_cfg.undo_on_l2_miss = mechanism.undo_on_l2_miss;
        let mut net = Network::with_faults(NocConfig::paper_baseline(topology, mechanism), faults)?;
        net.set_watchdog(watchdog);
        let cores = (0..topology.nodes())
            .map(|i| Core::new(i as u16, workload.core_trace(i)))
            .collect();
        let l1s = topology
            .iter_tiles()
            .map(|n| L1Cache::new(n, topology, proto_cfg.clone()))
            .collect();
        let l2s = topology
            .iter_tiles()
            .map(|n| L2Bank::new(n, topology, proto_cfg.clone()))
            .collect();
        let mcs = proto_cfg
            .mc_tiles
            .iter()
            .map(|n| (n.index(), MemoryController::new(*n, proto_cfg.mem_latency)))
            .collect();
        Ok(Self {
            topology,
            proto_cfg,
            net,
            cores,
            l1s,
            l2s,
            mcs,
            payloads: HashMap::new(),
            next_token: 0,
            undone: HashSet::new(),
            sink: TraceSink::default(),
            trace_epoch: 0,
            kernel: KernelMode::from_env(),
            open_loop: None,
        })
    }

    /// Turns on open-loop external traffic: installs the bounded-ingress
    /// layer at the topology's ingress edge (the west router column; see
    /// [`Topology::edge_nodes`]) and seeds one arrival stream per edge
    /// node. Every other tile serves external requests. Call before the
    /// first [`Chip::tick`].
    pub fn enable_open_loop(&mut self, cfg: OpenLoopConfig, seed: u64) {
        let edges = self.topology.edge_nodes();
        let servers: Vec<NodeId> = self
            .topology
            .iter_tiles()
            .filter(|n| !edges.contains(n))
            .collect();
        let circuits_enabled = self.net.config().mechanism.circuits_enabled();
        self.open_loop = Some(Box::new(OpenLoopState::new(
            cfg,
            seed,
            edges,
            servers,
            circuits_enabled,
            &mut self.net,
        )));
    }

    /// Turns on the adaptive runtime-policy controller: per-region
    /// congestion-aware detours and mechanism switching on the network
    /// (see [`Network::enable_adaptive`](rcsim_noc::Network::enable_adaptive)
    /// and DESIGN.md §14). Call before the first [`Chip::tick`].
    pub fn enable_adaptive(
        &mut self,
        cfg: rcsim_core::AdaptiveConfig,
    ) -> Result<(), rcsim_core::ConfigError> {
        self.net.enable_adaptive(cfg)
    }

    /// The external-traffic summary (all-zero for closed-loop chips).
    pub fn external_summary(&self) -> ExternalSummary {
        self.open_loop
            .as_ref()
            .map(|ol| ol.summary(&self.net))
            .unwrap_or_default()
    }

    /// Selects the simulation kernel for this chip and its network. Both
    /// kernels produce byte-identical results; `Event` skips quiescent
    /// tiles and is the default (see `RC_KERNEL`).
    pub fn set_kernel(&mut self, kernel: KernelMode) {
        self.kernel = kernel;
        self.net.set_kernel(kernel);
    }

    /// The active simulation kernel.
    pub fn kernel(&self) -> KernelMode {
        self.kernel
    }

    /// Selects the network's in-tick shard count (see
    /// [`Network::set_shards`](rcsim_noc::Network::set_shards)): `1` is
    /// the serial path, `n > 1` ticks `n` contiguous router domains on
    /// `n` worker threads per cycle with byte-identical results. The
    /// cache hierarchy itself stays serial — the network tick dominates
    /// the cycle loop.
    pub fn set_shards(&mut self, shards: usize) {
        self.net.set_shards(shards);
    }

    /// The network's active in-tick shard count.
    pub fn shards(&self) -> usize {
        self.net.shards()
    }

    /// Installs a trace sink, fanned out to the network (NIs and routers)
    /// and every cache so the whole chip records into one shared event
    /// log. Pass [`TraceSink::Disabled`] to turn tracing back off.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.net.set_trace_sink(sink.clone());
        for l1 in &mut self.l1s {
            l1.set_trace_sink(sink.clone());
        }
        for l2 in &mut self.l2s {
            l2.set_trace_sink(sink.clone());
        }
        self.sink = sink;
    }

    /// Sets the occupancy-sampling period: every `epoch` cycles the chip
    /// emits an [`EventKind::EpochSample`] with circuit-table, VC-buffer
    /// and NI-queue occupancy. `0` disables sampling.
    pub fn set_trace_epoch(&mut self, epoch: u64) {
        self.trace_epoch = epoch;
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.net.now()
    }

    /// The interconnect topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Advances the whole chip one cycle.
    pub fn tick(&mut self) {
        let now = self.net.now();
        let n = self.topology.nodes();
        let mechanism = *self.net.config();
        let circuits_enabled = mechanism.mechanism.circuits_enabled();
        let track_undone = self.proto_cfg.undo_on_l2_miss;
        let l1_hit = self.proto_cfg.l1_hit_latency;
        let event = self.kernel == KernelMode::Event;

        // Cores issue L1 accesses.
        for i in 0..n {
            // A core still computing (or blocked on a miss) polls as a
            // pure no-op; the event kernel skips the call outright.
            if event && self.cores[i].ready_at() > now {
                continue;
            }
            if let CoreAction::Access {
                block,
                write,
                value,
            } = self.cores[i].poll(now, l1_hit)
            {
                let mut port = ChipPort {
                    net: &mut self.net,
                    payloads: &mut self.payloads,
                    next_token: &mut self.next_token,
                    undone: &mut self.undone,
                    node: NodeId(i as u16),
                    circuits_enabled,
                    track_undone,
                };
                match self.l1s[i].access(block, write, write.then_some(value), &mut port) {
                    Access::Hit { .. } => self.cores[i].access_hit(now),
                    Access::Miss => self.cores[i].access_missed(),
                }
            }
        }

        // Overdue-miss reissue (DESIGN.md §10): a permanent fault may have
        // eaten a request or its reply before the fabric routed around the
        // dead resource. Cheap per-L1 no-op unless a miss is outstanding,
        // so it runs every cycle under both kernels (a blocked core is
        // exactly the tile the event kernel would otherwise skip).
        for i in 0..n {
            if !self.l1s[i].miss_pending() {
                continue;
            }
            let mut port = ChipPort {
                net: &mut self.net,
                payloads: &mut self.payloads,
                next_token: &mut self.next_token,
                undone: &mut self.undone,
                node: NodeId(i as u16),
                circuits_enabled,
                track_undone,
            };
            self.l1s[i].maybe_reissue(now, &mut port);
        }

        // Open-loop external traffic: service replies, client retries,
        // fresh arrivals and ingress release — all before the network
        // moves, so injections land this cycle under both kernels.
        if let Some(ol) = self.open_loop.as_mut() {
            ol.pre_net_tick(&mut self.net, now);
        }

        // The network moves.
        self.net.tick();
        let now = self.net.now();

        if self.trace_epoch > 0 && now.is_multiple_of(self.trace_epoch) && self.sink.is_enabled() {
            let t = self.net.telemetry();
            self.sink.emit(|| TraceEvent {
                cycle: now,
                kind: EventKind::EpochSample {
                    circuit_entries: t.circuit_entries,
                    buffered_flits: t.buffered_flits,
                    ni_backlog: t.ni_backlog,
                },
            });
        }

        // Deliveries fan out to the tile components.
        for (node, d) in self.net.take_all_delivered() {
            if d.token & EXT_TOKEN_BIT != 0 {
                // External traffic bypasses the coherence protocol.
                self.open_loop
                    .as_mut()
                    .expect("external token implies an open-loop driver")
                    .on_delivered(node, d.token, d.block, now);
                continue;
            }
            let msg = self
                .payloads
                .remove(&d.token)
                .expect("every injected packet has a payload record");
            let i = node.index();
            match msg.class {
                MessageClass::L2Reply
                | MessageClass::L1ToL1
                | MessageClass::Invalidation
                | MessageClass::FwdRequest
                | MessageClass::L2WbAck => {
                    let mut port = ChipPort {
                        net: &mut self.net,
                        payloads: &mut self.payloads,
                        next_token: &mut self.next_token,
                        undone: &mut self.undone,
                        node,
                        circuits_enabled,
                        track_undone,
                    };
                    if self.l1s[i]
                        .handle(&msg, d.rode_circuit, &mut port)
                        .is_some()
                    {
                        self.cores[i].miss_done(now, l1_hit);
                    }
                }
                MessageClass::L1Request
                | MessageClass::WbData
                | MessageClass::L1DataAck
                | MessageClass::L1InvAck
                | MessageClass::MemoryReply => {
                    self.l2s[i].receive(msg, now);
                }
                MessageClass::MemRequest | MessageClass::MemWbData => {
                    self.mcs
                        .get_mut(&i)
                        .expect("memory traffic targets an MC tile")
                        .receive(msg, now);
                }
            }
        }

        // L2 banks and memory controllers act on due work.
        for i in 0..n {
            // Ticking a bank with nothing due (and an MC with nothing
            // pending) is a no-op; the event kernel skips the tile.
            if event
                && !self.l2s[i].has_due_work(now)
                && !self.mcs.get(&i).is_some_and(|m| m.has_due_work(now))
            {
                continue;
            }
            let mut port = ChipPort {
                net: &mut self.net,
                payloads: &mut self.payloads,
                next_token: &mut self.next_token,
                undone: &mut self.undone,
                node: NodeId(i as u16),
                circuits_enabled,
                track_undone,
            };
            self.l2s[i].tick(now, &mut port);
            if let Some(mc) = self.mcs.get_mut(&i) {
                mc.tick(now, &mut port);
            }
        }
    }

    /// Runs `cycles` cycles, watching for lost progress. Returns the
    /// liveness report as the error if the network watchdog declares a
    /// stall (deadlock/livelock) along the way; the chip is left at the
    /// cycle the stall was detected for post-mortem inspection.
    ///
    /// # Errors
    ///
    /// [`HealthReport`] with `stalled == true` when in-flight traffic
    /// stopped moving for the watchdog's stall window.
    pub fn run(&mut self, cycles: u64) -> Result<(), Box<HealthReport>> {
        for _ in 0..cycles {
            self.tick();
            if self.net.stalled() {
                return Err(Box::new(self.health()));
            }
        }
        Ok(())
    }

    /// `true` when the network watchdog has declared a stall — the cheap
    /// per-tick check behind [`Chip::run`]; the full post-mortem is
    /// [`Chip::health`].
    pub fn stalled(&self) -> bool {
        self.net.stalled()
    }

    /// A liveness snapshot of the network (see [`Network::health`]),
    /// extended with the chip-level reissue counter.
    pub fn health(&self) -> HealthReport {
        let mut h = self.net.health();
        h.l1_reissues = self.l1s.iter().map(|l1| l1.stats().reissues).sum();
        h
    }

    /// Zeroes every statistic after warm-up (traffic in flight continues).
    pub fn reset_stats(&mut self) {
        self.net.reset_stats();
        for c in &mut self.cores {
            c.instructions = 0;
        }
        for l1 in &mut self.l1s {
            l1.reset_stats();
        }
        for l2 in &mut self.l2s {
            l2.reset_stats();
        }
        for mc in self.mcs.values_mut() {
            mc.reset_stats();
        }
        if let Some(ol) = self.open_loop.as_mut() {
            ol.reset_window();
        }
    }

    /// Instructions retired across all cores since the last reset.
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Network statistics snapshot.
    pub fn noc_stats(&self) -> NocStats {
        self.net.stats()
    }

    /// Aggregated L1 counters.
    pub fn l1_totals(&self) -> rcsim_protocol::L1Stats {
        let mut total = rcsim_protocol::L1Stats::default();
        for s in self.l1s.iter().map(L1Cache::stats) {
            total.hits += s.hits;
            total.misses += s.misses;
            total.upgrades += s.upgrades;
            total.writebacks += s.writebacks;
            total.invalidations += s.invalidations;
            total.forwards_served += s.forwards_served;
            total.acks_elided += s.acks_elided;
            total.reissues += s.reissues;
            total.stale_fills += s.stale_fills;
        }
        total
    }

    /// Aggregated L2 counters.
    pub fn l2_totals(&self) -> rcsim_protocol::L2Stats {
        let mut total = rcsim_protocol::L2Stats::default();
        for s in self.l2s.iter().map(L2Bank::stats) {
            total.hits += s.hits;
            total.misses += s.misses;
            total.forwards += s.forwards;
            total.invalidations += s.invalidations;
            total.evictions += s.evictions;
            total.queued_on_busy += s.queued_on_busy;
            total.busy_wait_cycles += s.busy_wait_cycles;
            total.self_acked += s.self_acked;
        }
        total
    }

    /// The complete dynamic state of the chip, for checkpointing. Call
    /// at a tick boundary (between [`Chip::tick`] calls): mid-tick
    /// scratch is empty there, so the snapshot is identical under every
    /// kernel and shard count. Configuration (topology, protocol
    /// parameters, mechanism, kernel, trace wiring) is deliberately
    /// excluded — a restore target is rebuilt from the same `SimConfig`
    /// and the snapshot overwrites only what evolves.
    pub fn snapshot(&self) -> ChipSnapshot {
        let mut mcs: Vec<(usize, MemSnapshot)> =
            self.mcs.iter().map(|(&i, mc)| (i, mc.snapshot())).collect();
        mcs.sort_unstable_by_key(|&(i, _)| i);
        let mut payloads: Vec<(u64, Msg)> = self.payloads.iter().map(|(&t, &m)| (t, m)).collect();
        payloads.sort_unstable_by_key(|&(t, _)| t);
        let mut undone: Vec<CircuitKey> = self.undone.iter().copied().collect();
        undone.sort_unstable_by_key(|k| (k.requestor, k.block));
        ChipSnapshot {
            net: self.net.snapshot(),
            cores: self.cores.iter().map(Core::snapshot).collect(),
            l1s: self.l1s.iter().map(L1Cache::snapshot).collect(),
            l2s: self.l2s.iter().map(L2Bank::snapshot).collect(),
            mcs,
            payloads,
            next_token: self.next_token,
            undone,
            open_loop: self.open_loop.as_deref().map(OpenLoopState::snapshot),
        }
    }

    /// Overwrites the chip's dynamic state from a [`Chip::snapshot`]
    /// taken on an identically-configured chip.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot's shape disagrees with this chip's
    /// configuration (different core count, or open-loop presence
    /// mismatch) — restoring across configurations is a caller bug.
    pub fn restore(&mut self, snap: &ChipSnapshot) {
        assert_eq!(
            snap.cores.len(),
            self.cores.len(),
            "checkpoint is for a different core count"
        );
        self.net.restore(&snap.net);
        for (core, s) in self.cores.iter_mut().zip(&snap.cores) {
            core.restore(s);
        }
        for (l1, s) in self.l1s.iter_mut().zip(&snap.l1s) {
            l1.restore(s.clone());
        }
        for (l2, s) in self.l2s.iter_mut().zip(&snap.l2s) {
            l2.restore(s.clone());
        }
        for (i, s) in &snap.mcs {
            self.mcs
                .get_mut(i)
                .expect("checkpoint has an MC on a non-MC tile")
                .restore(s.clone());
        }
        self.payloads = snap.payloads.iter().copied().collect();
        self.next_token = snap.next_token;
        self.undone = snap.undone.iter().copied().collect();
        match (self.open_loop.as_deref_mut(), &snap.open_loop) {
            (Some(ol), Some(s)) => ol.restore(s),
            (None, None) => {}
            _ => panic!("checkpoint and chip disagree on open-loop traffic"),
        }
    }

    /// Checks the single-writer/multiple-reader invariant and directory
    /// consistency across all caches. Returns human-readable violations
    /// (empty = coherent).
    pub fn coherence_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        // Gather every cached L1 line.
        let mut holders: HashMap<u64, Vec<(NodeId, bool, u64)>> = HashMap::new();
        for (i, l1) in self.l1s.iter().enumerate() {
            for (block, writable, value) in l1.lines() {
                holders
                    .entry(block)
                    .or_default()
                    .push((NodeId(i as u16), writable, value));
            }
        }
        for (block, hs) in &holders {
            let writers: Vec<_> = hs.iter().filter(|(_, w, _)| *w).collect();
            if writers.len() > 1 {
                violations.push(format!(
                    "block {block:#x}: {} writable copies",
                    writers.len()
                ));
            }
            if writers.len() == 1 && hs.len() > 1 {
                violations.push(format!(
                    "block {block:#x}: writable copy coexists with {} other copies",
                    hs.len() - 1
                ));
            }
            // Every actual holder must be known to the directory (the
            // directory may track stale sharers, never the reverse).
            let home = self.proto_cfg.home(&self.topology, *block);
            if let Some((owner, sharers)) = self.l2s[home.index()].probe(*block) {
                for (n, w, _) in hs {
                    let known = owner == Some(*n) || sharers & (1u64 << n.index()) != 0;
                    if !known && *w {
                        violations.push(format!(
                            "block {block:#x}: writable holder {n} unknown to the directory"
                        ));
                    }
                }
            } else {
                violations.push(format!(
                    "block {block:#x}: cached in an L1 but absent from its home bank (inclusion)"
                ));
            }
        }
        violations
    }
}

/// Complete dynamic state of a [`Chip`], for checkpointing (see
/// [`Chip::snapshot`]). Hash-keyed collections are sorted so the
/// serialized form is deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChipSnapshot {
    net: NetworkSnapshot,
    cores: Vec<CoreSnapshot>,
    l1s: Vec<L1Snapshot>,
    l2s: Vec<L2Snapshot>,
    mcs: Vec<(usize, MemSnapshot)>,
    payloads: Vec<(u64, Msg)>,
    next_token: u64,
    undone: Vec<CircuitKey>,
    open_loop: Option<OpenLoopSnapshot>,
}
