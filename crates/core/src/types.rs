//! Base identifier and message-class types shared by every layer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Simulation time in core/network clock cycles (the whole chip runs at a
/// single 2 GHz clock in the paper's configuration).
pub type Cycle = u64;

/// Identifier of a tile (core + L1 + L2 bank + router). Tiles are numbered
/// row-major across the mesh.
///
/// # Examples
///
/// ```
/// use rcsim_core::types::NodeId;
/// let n = NodeId(5);
/// assert_eq!(n.index(), 5);
/// assert_eq!(format!("{n}"), "n5");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node index as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A router port direction in the 2-D mesh. `Local` is the port to/from the
/// tile's network interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards smaller y (up in the usual drawing).
    North,
    /// Towards larger x.
    East,
    /// Towards larger y.
    South,
    /// Towards smaller x.
    West,
    /// Injection/ejection port of the tile.
    Local,
}

impl Direction {
    /// All five port directions, `Local` last (matches port indexing).
    pub const ALL: [Direction; 5] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::Local,
    ];

    /// Dense index in `0..5`, usable for port arrays.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// Inverse of [`Direction::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= 5`.
    pub fn from_index(i: usize) -> Direction {
        Direction::ALL[i]
    }

    /// The direction a flit sent out of this port *arrives from* at the
    /// neighbouring router (`North` ↔ `South`, `East` ↔ `West`).
    /// `Local` is its own opposite.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::Local => Direction::Local,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// Virtual network. The baseline NoC has two: one for requests and one for
/// replies (Table 4), which also makes the XY/YX routing split deadlock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vnet {
    /// Carries coherence requests, forwards, invalidations and write-back
    /// data; routed XY.
    Request,
    /// Carries all reply classes; routed YX.
    Reply,
}

impl Vnet {
    /// Both virtual networks, request first.
    pub const ALL: [Vnet; 2] = [Vnet::Request, Vnet::Reply];

    /// Dense index in `0..2`.
    pub fn index(self) -> usize {
        match self {
            Vnet::Request => 0,
            Vnet::Reply => 1,
        }
    }
}

impl fmt::Display for Vnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vnet::Request => f.write_str("req"),
            Vnet::Reply => f.write_str("rep"),
        }
    }
}

/// Every message class exchanged by the coherence protocol (paper Table 3),
/// with the request/reply and circuit-eligibility attributes of Table 1 and
/// §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MessageClass {
    /// L1 miss request (GetS/GetX) from L1 to the home L2 bank.
    L1Request,
    /// L2 forwards a request to the L1 that owns the line exclusively.
    FwdRequest,
    /// Invalidation from L2 to an L1 sharer.
    Invalidation,
    /// Write-back data from L1 to L2 (L1 replacement).
    WbData,
    /// L2 miss request from an L2 bank to a memory controller.
    MemRequest,
    /// L2 replacement data from an L2 bank to a memory controller.
    MemWbData,
    /// `L2_Replies`: data from L2 to L1.
    L2Reply,
    /// `L1_DATA_ACK`: L1 acknowledges data reception to L2.
    L1DataAck,
    /// `L2_WB_ACK`: L2 acknowledges write-back reception to L1.
    L2WbAck,
    /// `L1_INV_ACK`: invalidation acknowledgement from L1 to L2.
    L1InvAck,
    /// `MEMORY`: data (or write-back ack) from the memory controller to L2.
    MemoryReply,
    /// `L1_TO_L1`: data sent directly from the owning L1 to the requestor.
    L1ToL1,
}

impl MessageClass {
    /// All message classes, requests first.
    pub const ALL: [MessageClass; 12] = [
        MessageClass::L1Request,
        MessageClass::FwdRequest,
        MessageClass::Invalidation,
        MessageClass::WbData,
        MessageClass::MemRequest,
        MessageClass::MemWbData,
        MessageClass::L2Reply,
        MessageClass::L1DataAck,
        MessageClass::L2WbAck,
        MessageClass::L1InvAck,
        MessageClass::MemoryReply,
        MessageClass::L1ToL1,
    ];

    /// Which virtual network the class travels on. Anything that is a reply
    /// to another message uses the reply VN; everything else (including
    /// write-back *data*, which initiates a transaction) uses the request VN.
    pub fn vnet(self) -> Vnet {
        if self.is_reply() {
            Vnet::Reply
        } else {
            Vnet::Request
        }
    }

    /// `true` for the six reply classes of Table 1.
    pub fn is_reply(self) -> bool {
        matches!(
            self,
            MessageClass::L2Reply
                | MessageClass::L1DataAck
                | MessageClass::L2WbAck
                | MessageClass::L1InvAck
                | MessageClass::MemoryReply
                | MessageClass::L1ToL1
        )
    }

    /// `true` if a reactive circuit is built for this reply class (§4.1:
    /// `L2_Replies`, write-back acknowledgements and `MEMORY` replies).
    pub fn circuit_eligible(self) -> bool {
        matches!(
            self,
            MessageClass::L2Reply | MessageClass::L2WbAck | MessageClass::MemoryReply
        )
    }

    /// `true` if this request class reserves a circuit for its reply while
    /// it travels (§4.1). `FwdRequest` and `Invalidation` do not: their
    /// replies (`L1_TO_L1`, `L1_INV_ACK`) follow different paths.
    pub fn builds_circuit(self) -> bool {
        matches!(
            self,
            MessageClass::L1Request
                | MessageClass::WbData
                | MessageClass::MemRequest
                | MessageClass::MemWbData
        )
    }

    /// `true` for classes that carry a whole 64 B cache line (5 flits of
    /// 16 B: head + 4 data); control messages are a single flit.
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            MessageClass::WbData
                | MessageClass::MemWbData
                | MessageClass::L2Reply
                | MessageClass::MemoryReply
                | MessageClass::L1ToL1
        )
    }

    /// Message length in flits given the flit payload size in bytes.
    /// Data messages carry a 64 B line plus a header flit.
    pub fn flits(self, flit_bytes: u32) -> u32 {
        if self.carries_data() {
            1 + 64_u32.div_ceil(flit_bytes)
        } else {
            1
        }
    }

    /// Short label matching the paper's terminology, for reports.
    pub fn label(self) -> &'static str {
        match self {
            MessageClass::L1Request => "Request",
            MessageClass::FwdRequest => "FwdRequest",
            MessageClass::Invalidation => "Invalidation",
            MessageClass::WbData => "WbData",
            MessageClass::MemRequest => "MemRequest",
            MessageClass::MemWbData => "MemWbData",
            MessageClass::L2Reply => "L2_Reply",
            MessageClass::L1DataAck => "L1_DATA_ACK",
            MessageClass::L2WbAck => "L2_WB_ACK",
            MessageClass::L1InvAck => "L1_INV_ACK",
            MessageClass::MemoryReply => "MEMORY",
            MessageClass::L1ToL1 => "L1_TO_L1",
        }
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn direction_opposites() {
        assert_eq!(Direction::North.opposite(), Direction::South);
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::Local.opposite(), Direction::Local);
    }

    #[test]
    fn reply_classes_use_reply_vnet() {
        for c in MessageClass::ALL {
            assert_eq!(c.is_reply(), c.vnet() == Vnet::Reply, "{c}");
        }
    }

    #[test]
    fn eligibility_matches_paper() {
        use MessageClass::*;
        let eligible: Vec<_> = MessageClass::ALL
            .into_iter()
            .filter(|c| c.circuit_eligible())
            .collect();
        assert_eq!(eligible, vec![L2Reply, L2WbAck, MemoryReply]);
        // Only replies can be circuit-eligible.
        for c in MessageClass::ALL {
            if c.circuit_eligible() {
                assert!(c.is_reply());
            }
        }
    }

    #[test]
    fn builders_are_requests() {
        for c in MessageClass::ALL {
            if c.builds_circuit() {
                assert!(!c.is_reply(), "{c} cannot both build and be a reply");
            }
        }
        assert!(!MessageClass::FwdRequest.builds_circuit());
        assert!(!MessageClass::Invalidation.builds_circuit());
    }

    #[test]
    fn flit_counts() {
        assert_eq!(MessageClass::L1Request.flits(16), 1);
        assert_eq!(MessageClass::L2Reply.flits(16), 5);
        assert_eq!(MessageClass::WbData.flits(16), 5);
        assert_eq!(MessageClass::L1DataAck.flits(16), 1);
        assert_eq!(MessageClass::L2Reply.flits(32), 3);
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId::from(3).to_string(), "n3");
        assert_eq!(Direction::West.to_string(), "W");
        assert_eq!(Vnet::Reply.to_string(), "rep");
    }
}
