//! Overload robustness in one run: bursty open-loop traffic slams the
//! west edge of a 4×4 chip while admission control, bounded ingress
//! queues and deterministic load-shedding keep the fabric from wedging.
//!
//! ```text
//! cargo run --release --example overload
//! ```

use reactive_circuits::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bursty on/off arrivals: 0.6 arrivals/cycle/edge while bursting —
    // far past what the edge NIs can drain — with quiet spells between.
    let open_loop = OpenLoopConfig {
        process: ArrivalProcess::Bursty {
            rate_on: 0.6,
            rate_off: 0.02,
            mean_on: 400,
            mean_off: 800,
        },
        ingress: IngressConfig {
            queue_cap: 32,
            shed_timeout: 1_500,
            admission: true,
            tokens_per_kilocycle: 256, // admit ≤ 0.25/cycle/edge
            bucket_cap: 16,            // ...but let short bursts through
            backpressure_threshold: 8,
            retry_backoff: 64,
        },
        service_time: 20,
        slo: 1_000,
        max_client_retries: 3,
    };

    let cfg = SimConfig {
        open_loop: Some(open_loop),
        warmup_cycles: 3_000,
        measure_cycles: 20_000,
        ..SimConfig::quick(16, MechanismConfig::complete_noack(), "blackscholes")
    };

    println!("Running 16-core chip, bursty open-loop edge traffic, admission ON ...\n");
    let r = run_sim(&cfg)?;

    let e = &r.external;
    println!("external traffic:");
    println!(
        "  offered        {:>8}   (+{} client re-offers)",
        e.offered, e.reoffers
    );
    println!(
        "  completed      {:>8}   ({} within the {}-cycle SLO, measured window)",
        e.completed, e.completed_in_slo, 1_000
    );
    println!(
        "  rejected       {:>8}   (typed refusals with retry-after)",
        e.rejected
    );
    println!(
        "  shed           {:>8}   (explicit timeout drops, never silent)",
        e.shed
    );
    println!(
        "  gave up        {:>8}   (retry budget exhausted)",
        e.gave_up
    );
    println!("  still in flight{:>8}", e.in_flight);
    println!(
        "  latency        mean {:.1} cy, p50 {:.0}, p99 {:.0}, p99.9 {:.0}",
        e.latency_mean, e.latency_p50, e.latency_p99, e.latency_p999
    );

    // The OverloadReport rides inside the HealthReport watchdog snapshot.
    println!("\noverload report (via HealthReport):");
    println!("  {}", r.health.overload);

    // The books must balance: every arrival is completed, shed, given up
    // or still somewhere in the pipeline. Nothing is ever lost silently.
    assert_eq!(e.unaccounted, 0, "conservation violated");
    assert!(!r.health.stalled, "fabric stalled under overload");
    println!("\nconservation: offered == completed + shed + gave_up + in_flight  ✓");
    println!(
        "no stall, queues bounded (high-water {} ≤ cap 32)  ✓",
        r.health.overload.depth_high_water
    );
    Ok(())
}
