//! Anatomy of one reactive circuit: follow a single request across a 4×4
//! mesh, watch the reservation build, then ride the reply back over it.
//!
//! ```text
//! cargo run --release --example circuit_anatomy
//! ```

use reactive_circuits::core::circuit::CircuitKey;
use reactive_circuits::core::routing::{route_path, Routing};
use reactive_circuits::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = Mesh::new(4, 4)?;
    let mut net = Network::new(NocConfig::paper_baseline(mesh, MechanismConfig::complete()))?;
    let (src, dst, block) = (NodeId(0), NodeId(15), 0x40u64);

    println!("A request travels {src} → {dst} (XY) and reserves a circuit for its reply:\n");
    let fwd = route_path(&mesh, src, dst, Routing::Xy);
    let back = route_path(&mesh, dst, src, Routing::Yx);
    println!(
        "  request path (XY): {:?}",
        fwd.iter().map(|n| n.0).collect::<Vec<_>>()
    );
    println!(
        "  reply path   (YX): {:?}",
        back.iter().map(|n| n.0).collect::<Vec<_>>()
    );
    println!("  → same routers, opposite order: each hop of the request writes the");
    println!("    reply's (input port, output port) into that router's circuit table.\n");

    net.inject(PacketSpec::new(src, dst, MessageClass::L1Request).with_block(block));
    let mut delivered_at = 0;
    for _ in 0..200 {
        net.tick();
        if let Some(d) = net.take_delivered(dst).pop() {
            delivered_at = d.delivered_at;
            let handle = d.circuit.expect("request built a circuit");
            println!(
                "cycle {:>3}: request delivered; circuit reserved at {} routers ({}).",
                d.delivered_at,
                handle.built_hops,
                if handle.fully_built() {
                    "complete"
                } else {
                    "partial"
                }
            );
            break;
        }
    }

    let key = CircuitKey {
        requestor: src,
        block,
    };
    assert!(net.has_circuit_origin(dst, key));
    println!(
        "cycle {:>3}: {dst}'s network interface holds the circuit origin.",
        net.now()
    );

    // The L2 would take 7 cycles; then the 5-flit data reply rides.
    for _ in 0..7 {
        net.tick();
    }
    let (_, committed) = net.inject(
        PacketSpec::new(dst, src, MessageClass::L2Reply)
            .with_block(block)
            .with_circuit_key(key),
    );
    println!(
        "cycle {:>3}: reply injected; committed to its circuit: {committed}.",
        net.now()
    );
    for _ in 0..200 {
        net.tick();
        if let Some(d) = net.take_delivered(src).pop() {
            println!(
                "cycle {:>3}: reply delivered after {} cycles in the network",
                d.delivered_at,
                d.delivered_at - d.injected_at
            );
            println!(
                "           ({} hops × 2 cycles/hop + ejection — vs ~5 cycles/hop packet-switched).",
                mesh.distance(src, dst)
            );
            break;
        }
    }
    let _ = delivered_at;

    let stats = net.stats();
    println!(
        "\ncircuit-table writes: {}, lookups: {}, replies on circuit: {}",
        stats.activity.circuit_writes,
        stats.activity.circuit_lookups,
        stats.outcomes.get(&CircuitOutcome::OnCircuit).unwrap_or(&0)
    );
    Ok(())
}
