#!/usr/bin/env bash
# Continuous-integration gate: formatting, lints, release build, tests.
#
# Mirrors what a PR must pass locally. The wedge-detection test
# (tests/cross_crate.rs::wedged_network_surfaces_as_stalled_error) rides
# in the tier-1 `cargo test` step, so a hung-network regression fails CI
# with a HealthReport dump instead of a timeout.
#
# Usage: scripts/ci.sh [extra cargo args...]
# CARGO=... overrides the cargo invocation (e.g. a wrapper that adds
# --offline and local registry patches on air-gapped builders).

set -euo pipefail
cd "$(dirname "$0")/.."

CARGO=${CARGO:-cargo}

echo "==> cargo fmt --check"
$CARGO fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
$CARGO clippy --workspace --all-targets "$@" -- -D warnings

echo "==> cargo build --release"
$CARGO build --release "$@"

echo "==> cargo test (tier-1)"
$CARGO test -q "$@"

echo "==> cargo test --workspace"
$CARGO test --workspace "$@"

echo "==> bench telemetry smoke (traced fig6 + summary validation)"
# A tiny traced fig6 run must emit its machine-readable summary and a
# Chrome trace; validate_bench then checks every BENCH_*.json written so
# far against scripts/bench_schema.json. Catches a bench binary that
# silently stops writing (or corrupts) its summary. Summaries left over
# from runs predating the current BENCH_SCHEMA_VERSION would fail that
# scan spuriously on incremental builders, so start from a clean slate —
# every summary validated below is written by this CI run.
rm -f target/experiments/BENCH_*.json
RC_APPS=blackscholes RC_CYCLES=2000 RC_WARMUP=1000 RC_SMALL_CACHES=1 \
  RC_CORES=16 RC_MAX_CYCLES=10000 \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null
test -s target/experiments/BENCH_fig6.json
test -s target/experiments/fig6_trace.json
$CARGO run --release -q -p rcsim-bench --bin validate_bench "$@"

echo "==> parallel sweep smoke (RC_JOBS determinism, cache, speedup)"
# The sweep engine's contract: BENCH rows are byte-identical for any
# worker count — only the telemetry fields (wall_ms/busy_ms/jobs/
# cached_points) may differ — and a cache-warm rerun serves every point
# from disk. On runners with >= 4 cores the 4-worker sweep must also be
# at least 1.5x faster than the serial one.
smoke=(RC_APPS=blackscholes RC_CYCLES=2000 RC_WARMUP=1000
       RC_SMALL_CACHES=1 RC_CORES=16 RC_MAX_CYCLES=10000)
cache_dir=target/experiments/cache-ci
rm -rf "$cache_dir"
strip_telemetry() {
  grep -v -E '"(wall_ms|busy_ms|jobs|cached_points)"' "$1"
}
telemetry() {
  awk -F': ' -v key="\"$2\"" '$1 ~ key {gsub(/,/, "", $2); print $2; exit}' "$1"
}

env "${smoke[@]}" RC_JOBS=1 RC_NO_CACHE=1 \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_fig6.json target/experiments/ci_fig6_serial.json

env "${smoke[@]}" RC_JOBS=4 RC_CACHE_DIR="$cache_dir" \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_fig6.json target/experiments/ci_fig6_parallel.json

diff <(strip_telemetry target/experiments/ci_fig6_serial.json) \
     <(strip_telemetry target/experiments/ci_fig6_parallel.json) \
  || { echo "FAIL: BENCH_fig6.json rows differ between RC_JOBS=1 and RC_JOBS=4"; exit 1; }

serial_ms=$(telemetry target/experiments/ci_fig6_serial.json wall_ms)
parallel_ms=$(telemetry target/experiments/ci_fig6_parallel.json wall_ms)
echo "    serial ${serial_ms} ms, 4 workers ${parallel_ms} ms ($(nproc) cores)"
if [ "$(nproc)" -ge 4 ]; then
  awk -v s="$serial_ms" -v p="$parallel_ms" 'BEGIN { exit !(s > 1.5 * p) }' \
    || { echo "FAIL: expected > 1.5x sweep speedup with RC_JOBS=4 on a $(nproc)-core runner"; exit 1; }
fi

env "${smoke[@]}" RC_JOBS=4 RC_CACHE_DIR="$cache_dir" \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null 2> /dev/null
cached=$(telemetry target/experiments/BENCH_fig6.json cached_points)
[ "${cached:-0}" -gt 0 ] \
  || { echo "FAIL: cache-warm rerun recomputed every point (cached_points=$cached)"; exit 1; }
echo "    cache-warm rerun served $cached points from $cache_dir"
$CARGO run --release -q -p rcsim-bench --bin validate_bench "$@"

echo "==> dense-vs-event kernel smoke (RC_KERNEL byte-identity on fig6 rows)"
# The event kernel (idle-skip scheduling) must be observationally
# indistinguishable from the dense one: the same fig6 quick grid, run
# once per kernel, must emit byte-identical BENCH rows. RC_NO_CACHE=1 is
# load-bearing — the disk cache keys on SimConfig, which deliberately
# excludes RC_KERNEL, so a cache hit would compare a result with itself.
env "${smoke[@]}" RC_JOBS=1 RC_NO_CACHE=1 RC_KERNEL=dense \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_fig6.json target/experiments/ci_fig6_dense.json
env "${smoke[@]}" RC_JOBS=1 RC_NO_CACHE=1 RC_KERNEL=event \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_fig6.json target/experiments/ci_fig6_event.json
diff <(strip_telemetry target/experiments/ci_fig6_dense.json) \
     <(strip_telemetry target/experiments/ci_fig6_event.json) \
  || { echo "FAIL: BENCH_fig6.json rows differ between RC_KERNEL=dense and RC_KERNEL=event"; exit 1; }

echo "==> kernel bench smoke (BENCH_kernel.json + internal identity asserts)"
# The kernel bench re-asserts dense/event RunResult identity on every
# point it times, so just running it is a differential check; then make
# sure its summary landed and validates against the schema.
env "${smoke[@]}" \
  $CARGO run --release -q -p rcsim-bench --bin kernel "$@" > /dev/null
test -s target/experiments/BENCH_kernel.json
$CARGO run --release -q -p rcsim-bench --bin validate_bench "$@"

echo "==> resilience smoke (dead links: every mechanism, kernel/jobs invariance)"
# Permanent-fault gate (DESIGN.md §10). The resilience test suite proves
# every Figure-6 mechanism completes — nothing stalled, nothing
# abandoned — with a permanently dead interior link; the resilience
# bench (degradation sweep + mid-run-onset recovery, with its own
# zero-abandoned asserts) must then emit byte-identical rows for any
# worker count and either kernel. RC_NO_CACHE=1 is load-bearing for the
# kernel diff — the cache key excludes RC_KERNEL.
$CARGO test -q -p rcsim-system --test resilience "$@"
env "${smoke[@]}" RC_JOBS=1 RC_NO_CACHE=1 RC_KERNEL=dense \
  $CARGO run --release -q -p rcsim-bench --bin resilience "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_resilience.json target/experiments/ci_resilience_dense.json
env "${smoke[@]}" RC_JOBS=1 RC_NO_CACHE=1 RC_KERNEL=event \
  $CARGO run --release -q -p rcsim-bench --bin resilience "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_resilience.json target/experiments/ci_resilience_event.json
env "${smoke[@]}" RC_JOBS=4 RC_NO_CACHE=1 RC_KERNEL=event \
  $CARGO run --release -q -p rcsim-bench --bin resilience "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_resilience.json target/experiments/ci_resilience_jobs4.json
diff <(strip_telemetry target/experiments/ci_resilience_dense.json) \
     <(strip_telemetry target/experiments/ci_resilience_event.json) \
  || { echo "FAIL: BENCH_resilience.json rows differ between RC_KERNEL=dense and RC_KERNEL=event"; exit 1; }
diff <(strip_telemetry target/experiments/ci_resilience_event.json) \
     <(strip_telemetry target/experiments/ci_resilience_jobs4.json) \
  || { echo "FAIL: BENCH_resilience.json rows differ between RC_JOBS=1 and RC_JOBS=4"; exit 1; }
$CARGO run --release -q -p rcsim-bench --bin validate_bench "$@"

echo "==> overload smoke (open-loop saturation: conservation, kernel/jobs invariance)"
# Overload gate (DESIGN.md §11). The open_loop test suite proves
# conservation (offered == completed + shed + gave_up + in_flight, zero
# unaccounted) below and past saturation, with admission on and off, and
# dense/event byte-identity on open-loop runs. The overload bench — a
# past-saturation load sweep per mechanism with per-point conservation,
# termination and queue-bound asserts baked in — must then emit
# byte-identical rows for either kernel and any worker count.
# RC_NO_CACHE=1 is load-bearing for the kernel diff — the cache key
# excludes RC_KERNEL.
$CARGO test -q -p rcsim-system --test open_loop "$@"
env "${smoke[@]}" RC_JOBS=1 RC_NO_CACHE=1 RC_KERNEL=dense \
  $CARGO run --release -q -p rcsim-bench --bin overload "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_overload.json target/experiments/ci_overload_dense.json
env "${smoke[@]}" RC_JOBS=1 RC_NO_CACHE=1 RC_KERNEL=event \
  $CARGO run --release -q -p rcsim-bench --bin overload "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_overload.json target/experiments/ci_overload_event.json
env "${smoke[@]}" RC_JOBS=4 RC_NO_CACHE=1 RC_KERNEL=event \
  $CARGO run --release -q -p rcsim-bench --bin overload "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_overload.json target/experiments/ci_overload_jobs4.json
diff <(strip_telemetry target/experiments/ci_overload_dense.json) \
     <(strip_telemetry target/experiments/ci_overload_event.json) \
  || { echo "FAIL: BENCH_overload.json rows differ between RC_KERNEL=dense and RC_KERNEL=event"; exit 1; }
diff <(strip_telemetry target/experiments/ci_overload_event.json) \
     <(strip_telemetry target/experiments/ci_overload_jobs4.json) \
  || { echo "FAIL: BENCH_overload.json rows differ between RC_JOBS=1 and RC_JOBS=4"; exit 1; }
$CARGO run --release -q -p rcsim-bench --bin validate_bench "$@"

echo "==> topology smoke (mesh/torus/cmesh/ring circuit sweep, deadlock-freedom)"
# Topology gate (DESIGN.md §12). A small closed-loop sweep over every
# topology shape at 64 cores: every point must drain to quiescence with
# zero abandoned packets (asserted inside the bench — this is the
# wraparound dateline correctness check), rows must be byte-identical
# across reruns (seeded, single-threaded determinism), and the summary
# must validate against the schema.
RC_TOPO_CYCLES=600 RC_TOPO_CORES=64 \
  $CARGO run --release -q -p rcsim-bench --bin topology "$@" > /dev/null
test -s target/experiments/BENCH_topology.json
cp target/experiments/BENCH_topology.json target/experiments/ci_topology_a.json
RC_TOPO_CYCLES=600 RC_TOPO_CORES=64 \
  $CARGO run --release -q -p rcsim-bench --bin topology "$@" > /dev/null
diff <(strip_telemetry target/experiments/ci_topology_a.json) \
     <(strip_telemetry target/experiments/BENCH_topology.json) \
  || { echo "FAIL: BENCH_topology.json rows differ between identical reruns"; exit 1; }
$CARGO run --release -q -p rcsim-bench --bin validate_bench "$@"

echo "==> sharded-tick smoke (RC_SHARDS byte-identity on fig6 + topology rows)"
# In-tick sharding gate (DESIGN.md §13). One simulation split across
# worker threads must be observationally indistinguishable from the
# serial tick: the fig6 quick grid and the per-topology sweep, run at
# RC_SHARDS=1 and RC_SHARDS=4, must emit byte-identical BENCH rows.
# RC_NO_CACHE=1 is load-bearing — the cache key deliberately excludes
# RC_SHARDS, so a cache hit would compare a result with itself.
env "${smoke[@]}" RC_JOBS=1 RC_NO_CACHE=1 RC_SHARDS=1 \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_fig6.json target/experiments/ci_fig6_shards1.json
env "${smoke[@]}" RC_JOBS=1 RC_NO_CACHE=1 RC_SHARDS=4 \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_fig6.json target/experiments/ci_fig6_shards4.json
diff <(strip_telemetry target/experiments/ci_fig6_shards1.json) \
     <(strip_telemetry target/experiments/ci_fig6_shards4.json) \
  || { echo "FAIL: BENCH_fig6.json rows differ between RC_SHARDS=1 and RC_SHARDS=4"; exit 1; }
RC_TOPO_CYCLES=600 RC_TOPO_CORES=64 RC_SHARDS=1 \
  $CARGO run --release -q -p rcsim-bench --bin topology "$@" > /dev/null
cp target/experiments/BENCH_topology.json target/experiments/ci_topology_shards1.json
RC_TOPO_CYCLES=600 RC_TOPO_CORES=64 RC_SHARDS=4 \
  $CARGO run --release -q -p rcsim-bench --bin topology "$@" > /dev/null
diff <(strip_telemetry target/experiments/ci_topology_shards1.json) \
     <(strip_telemetry target/experiments/BENCH_topology.json) \
  || { echo "FAIL: BENCH_topology.json rows differ between RC_SHARDS=1 and RC_SHARDS=4"; exit 1; }

echo "==> shards bench smoke (BENCH_shards.json + per-point identity asserts)"
# The shards bench re-asserts serial/sharded stats byte-identity on
# every point before reporting its speedup, so just running it is a
# differential check; a small 256-core slice keeps it quick. On runners
# with >= 4 cores the best 4-shard point must also clear 1.5x.
RC_SHARD_CYCLES=600 RC_SHARD_CORES=256 RC_SHARD_COUNTS=1,4 \
  $CARGO run --release -q -p rcsim-bench --bin shards "$@" > /dev/null
test -s target/experiments/BENCH_shards.json
$CARGO run --release -q -p rcsim-bench --bin validate_bench "$@"
if [ "$(nproc)" -ge 4 ]; then
  best=$(grep -o '"speedup_shards4": [0-9.]*' target/experiments/BENCH_shards.json \
    | awk '{ if ($2 > m) m = $2 } END { print m }')
  awk -v s="${best:-0}" 'BEGIN { exit !(s > 1.5) }' \
    || { echo "FAIL: expected > 1.5x tick speedup with RC_SHARDS=4 at 256 cores on a $(nproc)-core runner (best ${best:-0})"; exit 1; }
fi

echo "==> adaptive policy smoke (static-vs-adaptive rows, off-path byte-identity)"
# Adaptive-policy gate (DESIGN.md §14). The differential suite proves
# the policy hooks are invisible with `adaptive` off (traced kernel x
# shard matrix on mesh and torus) and deterministic with it on; the
# property suite pins the controller's hysteresis/dwell algebra and the
# teardown conservation law. The adaptive bench then runs the
# adversarial sweep — phased hotspot salvos over a light closed-loop
# foreground — and asserts internally that the adaptive row beats the
# best static row on p99 RTT or foreground goodput while actually
# switching; the rows are echoed here so a CI log shows the margin.
# Finally, an off-path re-check: a fresh RC_NO_CACHE=1 fig6 run after
# the policy layer has been exercised must still match the serial rows
# from the sweep smoke bit for bit (RC_NO_CACHE=1 is load-bearing —
# `adaptive` is skip-serialized when off, so a cache hit would compare
# a pre-adaptive row with itself).
$CARGO test -q -p rcsim-system --test adaptive_diff "$@"
$CARGO test -q -p rcsim-core --test policy_props "$@"
$CARGO run --release -q -p rcsim-bench --bin adaptive "$@" > /dev/null
test -s target/experiments/BENCH_adaptive.json
grep -E '"(label|p99_latency|goodput)"' target/experiments/BENCH_adaptive.json \
  | sed 's/^ */    /'
$CARGO run --release -q -p rcsim-bench --bin validate_bench "$@"
env "${smoke[@]}" RC_JOBS=1 RC_NO_CACHE=1 \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null 2> /dev/null
diff <(strip_telemetry target/experiments/ci_fig6_serial.json) \
     <(strip_telemetry target/experiments/BENCH_fig6.json) \
  || { echo "FAIL: adaptive-off BENCH_fig6.json rows drifted after the adaptive smoke"; exit 1; }

echo "==> kernel/shard/power/traffic differential suites (RC_JOBS=1 and 4)"
# The dense-vs-event differential layer plus the new power-model and
# traffic-pattern suites, under both a serial and a parallel test
# harness (RC_JOBS is read by sweep-backed tests; the loop also shakes
# out any accidental test-order coupling).
for jobs in 1 4; do
  RC_JOBS=$jobs $CARGO test -q -p rcsim-system --test kernel_diff "$@"
  RC_JOBS=$jobs $CARGO test -q -p rcsim-core --test shard_props "$@"
  RC_JOBS=$jobs $CARGO test -q -p rcsim-power "$@"
  RC_JOBS=$jobs $CARGO test -q -p rcsim-noc --test traffic_patterns "$@"
done

echo "==> checkpoint smoke (kill-and-resume byte-identity, corrupt-file clean miss)"
# Crash-resilience gate (DESIGN.md §15). The differential suite proves
# save/restore byte-identity at arbitrary split cycles across kernels,
# shards, topologies, faults, overload and adaptive runs; the diagnoser
# suite pins the wait-for-graph cycle report on a real legacy-allocator
# wedge. Then the crash drill: a checkpointed fig6 sweep is SIGKILLed
# mid-run (the bench binary is invoked directly — killing a `cargo run`
# wrapper would orphan the simulator), half of whatever checkpoints it
# left behind are deliberately corrupted, and the rerun must finish
# from the surviving on-disk state with rows byte-identical to an
# uncheckpointed reference — a corrupt or stale checkpoint is a clean
# miss (fresh start), never a crash. Finally rcsim-replay must reject a
# stale-version checkpoint with a clean nonzero exit.
$CARGO test -q -p rcsim-system --test checkpoint_diff "$@"
$CARGO test -q -p rcsim-noc --test deadlock_diagnoser "$@"
ckpt_smoke=(RC_APPS=blackscholes RC_CYCLES=8000 RC_WARMUP=2000
            RC_SMALL_CACHES=1 RC_CORES=16 RC_MAX_CYCLES=40000
            RC_JOBS=1 RC_NO_CACHE=1)
ckpt_dir=target/experiments/ckpt-ci
rm -rf "$ckpt_dir"
env "${ckpt_smoke[@]}" \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null 2> /dev/null
cp target/experiments/BENCH_fig6.json target/experiments/ci_fig6_nockpt.json
env "${ckpt_smoke[@]}" RC_CKPT_DIR="$ckpt_dir" RC_CKPT_INTERVAL=500 \
  target/release/fig6 > /dev/null 2> /dev/null &
victim=$!
sleep 0.4
kill -9 "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true
echo "    SIGKILLed sweep left $(find "$ckpt_dir" -name '*.ckpt' 2> /dev/null | wc -l) checkpoint(s) in $ckpt_dir"
i=0
for f in "$ckpt_dir"/*.ckpt; do
  [ -e "$f" ] || continue
  if [ $((i % 2)) -eq 0 ]; then printf 'garbage' >> "$f"; fi
  i=$((i + 1))
done
env "${ckpt_smoke[@]}" RC_CKPT_DIR="$ckpt_dir" RC_CKPT_INTERVAL=500 \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null 2> /dev/null
diff <(strip_telemetry target/experiments/ci_fig6_nockpt.json) \
     <(strip_telemetry target/experiments/BENCH_fig6.json) \
  || { echo "FAIL: BENCH_fig6.json rows differ after a SIGKILLed checkpointed sweep resumed"; exit 1; }
if find "$ckpt_dir" -name '*.ckpt' | grep -q .; then
  echo "FAIL: completed sweep left checkpoints behind in $ckpt_dir"; exit 1
fi
mkdir -p "$ckpt_dir"
printf 'rcsim-checkpoint v0 0000000000000000\n{}' > "$ckpt_dir/stale.ckpt"
if $CARGO run --release -q -p rcsim-bench --bin rcsim-replay "$ckpt_dir/stale.ckpt" > /dev/null 2> /dev/null; then
  echo "FAIL: rcsim-replay accepted a stale-version checkpoint"; exit 1
fi

echo "==> checkpoint cost bench (BENCH_checkpoint.json + <5% default-interval gate)"
# The cost sweep asserts internally that every checkpointed run is
# byte-identical to the plain run and that default-interval overhead
# stays under 5%; a short window keeps it quick.
RC_CKPT_BENCH_CYCLES=2000 RC_CKPT_BENCH_REPS=2 \
  RC_CKPT_NET_CORES=64 RC_CKPT_NET_CYCLES=600 \
  $CARGO run --release -q -p rcsim-bench --bin checkpoint "$@" > /dev/null
test -s target/experiments/BENCH_checkpoint.json
$CARGO run --release -q -p rcsim-bench --bin validate_bench "$@"

echo "CI gate passed."
