//! Core of the Reactive Circuits reproduction: base types, mesh geometry,
//! XY/YX dimension-order routing, the mechanism configuration space, and —
//! the paper's primary contribution — the **circuit reservation engine**.
//!
//! The engine ([`circuit::RouterCircuits`]) implements every reservation
//! flavour evaluated by the paper:
//!
//! * *fragmented* circuits (partial reservations kept, 2 circuits/input,
//!   one per extra circuit VC),
//! * *complete* circuits (all-or-nothing, buffers removed, 5 circuits/input,
//!   same-source-per-input and unique-input-per-output conflict rules),
//! * *timed* complete circuits with the `Slack`, `SlackDelay` and
//!   `Postponed` variants (window algebra in [`circuit::timing`]),
//! * the *ideal* upper bound (no conflict rules, unlimited storage).
//!
//! Higher layers ([`rcsim-noc`](https://docs.rs/rcsim-noc),
//! [`rcsim-protocol`](https://docs.rs/rcsim-protocol)) embed one
//! [`circuit::RouterCircuits`] per router and one
//! [`circuit::CircuitHandle`] per in-flight request.
//!
//! # Examples
//!
//! ```
//! use rcsim_core::geometry::Mesh;
//! use rcsim_core::routing::{route_path, Routing};
//! use rcsim_core::types::NodeId;
//!
//! let mesh = Mesh::new(4, 4)?;
//! let req = route_path(&mesh, NodeId(0), NodeId(15), Routing::Xy);
//! let rep = route_path(&mesh, NodeId(15), NodeId(0), Routing::Yx);
//! // XY there and YX back cross the same routers, in reverse order.
//! let mut rev = rep.clone();
//! rev.reverse();
//! assert_eq!(req, rev);
//! # Ok::<(), rcsim_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod config;
pub mod geometry;
pub mod policy;
pub mod routing;
pub mod sched;
pub mod shard;
pub mod topology;
pub mod types;

pub use config::{CircuitMode, ConfigError, MechanismConfig, TimedPolicy};
pub use geometry::Mesh;
pub use policy::{
    AdaptiveConfig, CongestionMap, CongestionSnapshot, PolicyController, RegionDecision,
    RegionMode, RegionSample, SCORE_SCALE,
};
pub use routing::{TopologyHealth, TopologyHealthSnapshot};
pub use sched::{KernelMode, WakeTimes};
pub use shard::{shards_from_env, ShardPlan};
pub use topology::{
    Topology, TopologySpec, PORT_EAST, PORT_LOCAL, PORT_NORTH, PORT_SOUTH, PORT_WEST,
};
pub use types::{Cycle, Direction, MessageClass, NodeId, Vnet};
