//! Property-based round trips of the circuit-table checkpoint encoding:
//! a [`RouterCircuits`] driven through an arbitrary op interleaving must
//! survive serialize → deserialize bit-for-bit (equal state, equal
//! re-serialization) and — the property the checkpoint subsystem actually
//! rests on — the restored table must behave identically to the original
//! under any continuation of the workout.

use proptest::prelude::*;
use rcsim_core::circuit::{CircuitKey, ReserveRequest, RouterCircuits};
use rcsim_core::{CircuitMode, NodeId};

/// One step of a random table workout (a compact cousin of the driver in
/// `circuit_table_props.rs`: op identity doubles as the circuit key).
#[derive(Debug, Clone, Copy)]
enum Op {
    Reserve(u16, usize, usize),
    Release(usize),
    Undo(usize),
    BeginUse(usize),
    EndUse(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let reserve = || (0u16..4, 0usize..5, 0usize..5).prop_map(|(s, i, o)| Op::Reserve(s, i, o));
    prop_oneof![
        reserve(),
        reserve(),
        reserve(),
        (0usize..16).prop_map(Op::Release),
        (0usize..16).prop_map(Op::Undo),
        (0usize..16).prop_map(Op::BeginUse),
        (0usize..16).prop_map(Op::EndUse),
    ]
}

/// Applies one op to a table. `tag` disambiguates the keys of ops applied
/// at the same position in different segments of the workout, and live
/// keys are recovered from the table itself so the original and the
/// restored copy are always offered the identical call sequence.
fn apply(rc: &mut RouterCircuits, tag: u64, i: usize, op: Op) {
    let live: Vec<(usize, CircuitKey)> = rc
        .stale_entries(0, 0)
        .into_iter()
        .map(|(p, e, _)| (p, e.key))
        .collect();
    let nth = |n: usize| {
        if live.is_empty() {
            None
        } else {
            Some(live[n % live.len()])
        }
    };
    match op {
        Op::Reserve(source, in_port, out_port) => {
            let block = (tag << 32) | (i as u64 * 64);
            let _ = rc.try_reserve(&ReserveRequest {
                key: CircuitKey {
                    requestor: NodeId((block % 97) as u16),
                    block,
                },
                source: NodeId(source),
                in_port,
                out_port,
                window: None,
                max_extra_shift: 0,
            });
        }
        Op::Release(n) => {
            if let Some((port, k)) = nth(n) {
                rc.release(port, k);
            }
        }
        Op::Undo(n) => {
            if let Some((_, k)) = nth(n) {
                rc.undo(k);
            }
        }
        Op::BeginUse(n) => {
            if let Some((port, k)) = nth(n) {
                rc.begin_use(port, k);
            }
        }
        Op::EndUse(n) => {
            if let Some((port, k)) = nth(n) {
                rc.end_use(port, k);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every mode: after an arbitrary prefix, the serialized table
    /// deserializes to an equal table with an identical re-serialization,
    /// and original and restored copy stay in lockstep (equal occupancy
    /// and equal bytes) through an arbitrary suffix of further ops.
    #[test]
    fn circuit_table_roundtrips_and_stays_in_lockstep(
        mode_ix in 0usize..3,
        prefix in prop::collection::vec(op_strategy(), 1..40),
        suffix in prop::collection::vec(op_strategy(), 0..20),
    ) {
        let mode = [CircuitMode::Complete, CircuitMode::Fragmented, CircuitMode::Ideal][mode_ix];
        let mut rc = RouterCircuits::new(mode, 3, 2);
        for (i, op) in prefix.iter().enumerate() {
            apply(&mut rc, 0, i, *op);
        }

        let json = serde_json::to_string(&rc).expect("serialize table");
        let mut restored: RouterCircuits = serde_json::from_str(&json).expect("deserialize table");
        prop_assert_eq!(&restored, &rc, "restored table differs from the original");
        prop_assert_eq!(
            serde_json::to_string(&restored).expect("re-serialize"),
            json,
            "re-serialization is not byte-identical"
        );

        for (i, op) in suffix.iter().enumerate() {
            apply(&mut rc, 1, i, *op);
            apply(&mut restored, 1, i, *op);
            for p in 0..5 {
                prop_assert_eq!(rc.occupancy(p), restored.occupancy(p));
            }
        }
        prop_assert_eq!(
            serde_json::to_string(&rc).expect("serialize original"),
            serde_json::to_string(&restored).expect("serialize restored"),
            "tables diverged after the restore"
        );
    }
}
