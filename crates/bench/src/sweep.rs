//! Parallel sweep execution with an on-disk result cache.
//!
//! Every experiment binary is a sweep over independent, seed-deterministic
//! [`SimConfig`] points. [`SweepRunner`] fans a job list across
//! `std::thread::scope` workers (`RC_JOBS`, default = available
//! parallelism; `RC_JOBS=1` is the exact serial path — no threads are
//! spawned) and collects results **in submission order**, so tables and
//! `BENCH_<name>.json` rows are byte-identical regardless of worker
//! count. Per-point failures are collected, not fatal mid-sweep.
//!
//! Completed points are cached under `target/experiments/cache/` (or
//! `RC_CACHE_DIR`), keyed by [`cache_key`]: a stable FNV-1a hash of the
//! serde-serialized [`SimConfig`] plus [`CACHE_FORMAT_VERSION`]. A rerun
//! after an unrelated edit skips already-computed points; `RC_NO_CACHE=1`
//! bypasses the cache entirely. A corrupt, truncated or stale-format
//! cache file is treated as a miss and recomputed, never an error.

use rcsim_system::{
    run_sim, run_sim_resumable, shards_from_env, KernelMode, RunResult, SimConfig, SimError,
};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Cycles between periodic checkpoints when `RC_CKPT_DIR` enables them
/// without an explicit `RC_CKPT_INTERVAL`. Long enough that the snapshot
/// cost stays well under 5% of the wall time of any realistic point (the
/// `BENCH_checkpoint` harness asserts it), short enough that a killed
/// overnight sweep loses minutes, not hours.
pub const DEFAULT_CKPT_INTERVAL: u64 = 100_000;

/// Bumped whenever [`RunResult`] or the simulator's semantics change in a
/// way that invalidates previously cached results. Part of the cache key,
/// so stale entries are simply never looked up again.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// Stable 64-bit FNV-1a over `bytes` — deliberately not `DefaultHasher`,
/// whose output may change between Rust releases; cache keys must be
/// stable across toolchains.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content hash a [`SimConfig`] is cached under: FNV-1a of the
/// version-prefixed serde JSON form. Any field change — seed, cycles,
/// mechanism knobs, fault plan — produces a different key. Returns `None`
/// only if the config fails to serialize (never happens in practice).
pub fn cache_key(cfg: &SimConfig) -> Option<u64> {
    let json = serde_json::to_string(cfg).ok()?;
    Some(fnv1a(
        format!("rcsim-cache-v{CACHE_FORMAT_VERSION}:{json}").as_bytes(),
    ))
}

/// What a cache file holds. The full `config` rides along so a (vanishingly
/// unlikely) hash collision — or a hand-edited file — is detected by
/// field-for-field comparison instead of silently returning wrong results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CacheEntry {
    format_version: u32,
    config: SimConfig,
    result: RunResult,
}

/// Aggregate counters for one [`SweepRunner::run`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// Points submitted.
    pub points: usize,
    /// Worker threads used (1 = serial path).
    pub jobs: usize,
    /// Points served from the on-disk cache.
    pub cached: usize,
    /// Points whose simulation returned an error.
    pub failed: usize,
    /// Wall-clock milliseconds for the whole sweep.
    pub wall_ms: f64,
    /// Sum of per-point simulation times in milliseconds; `busy_ms /
    /// wall_ms` approximates the achieved parallel speedup.
    pub busy_ms: f64,
}

/// Results of a sweep, in submission order.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One entry per submitted job, index-aligned with the input order
    /// regardless of which worker ran it or when it finished.
    pub results: Vec<Result<RunResult, SimError>>,
    /// Execution counters for the sweep.
    pub stats: SweepStats,
}

/// Executes a list of labelled [`SimConfig`] jobs across worker threads,
/// with transparent result caching. See the module docs for the knobs.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    workers: usize,
    cache_dir: Option<PathBuf>,
    checkpoints: Option<(PathBuf, u64)>,
}

impl SweepRunner {
    /// A runner with an explicit worker count and cache directory
    /// (`None` disables caching). Tests use this to avoid touching the
    /// process environment.
    pub fn new(workers: usize, cache_dir: Option<PathBuf>) -> Self {
        Self {
            workers: workers.max(1),
            cache_dir,
            checkpoints: None,
        }
    }

    /// Enables crash resilience: uncached points checkpoint to `dir`
    /// every `interval` cycles and resume from the latest valid
    /// checkpoint on a rerun, so a killed sweep re-does at most
    /// `interval` cycles per in-flight point. Composes with the result
    /// cache — a finished point is served from the cache, a half-finished
    /// one from its checkpoint.
    #[must_use]
    pub fn with_checkpoints(mut self, dir: PathBuf, interval: u64) -> Self {
        self.checkpoints = Some((dir, interval.max(1)));
        self
    }

    /// The runner the experiment binaries use: `RC_JOBS` workers (default
    /// = available parallelism), caching under `RC_CACHE_DIR` (default
    /// `target/experiments/cache/`) unless `RC_NO_CACHE=1`.
    pub fn from_env() -> Self {
        let workers = std::env::var("RC_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        let cache_dir = if std::env::var("RC_NO_CACHE").is_ok_and(|v| v == "1") {
            None
        } else {
            Some(PathBuf::from(
                std::env::var("RC_CACHE_DIR")
                    .unwrap_or_else(|_| "target/experiments/cache".to_owned()),
            ))
        };
        let runner = Self::new(workers, cache_dir);
        match std::env::var("RC_CKPT_DIR") {
            Ok(dir) if !dir.is_empty() => {
                let interval = std::env::var("RC_CKPT_INTERVAL")
                    .ok()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or(DEFAULT_CKPT_INTERVAL);
                runner.with_checkpoints(PathBuf::from(dir), interval)
            }
            _ => runner,
        }
    }

    /// Worker threads this runner fans across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Where this runner caches results (`None` = caching disabled).
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// The checkpoint directory and interval, when crash resilience is
    /// enabled (`RC_CKPT_DIR` / [`Self::with_checkpoints`]).
    pub fn checkpoints(&self) -> Option<(&Path, u64)> {
        self.checkpoints.as_ref().map(|(d, i)| (d.as_path(), *i))
    }

    /// The on-disk cache file a config maps to, if caching is enabled.
    pub fn cache_path(&self, cfg: &SimConfig) -> Option<PathBuf> {
        let dir = self.cache_dir.as_ref()?;
        Some(dir.join(format!("{:016x}.json", cache_key(cfg)?)))
    }

    fn cache_lookup(&self, cfg: &SimConfig) -> Option<RunResult> {
        let path = self.cache_path(cfg)?;
        let text = std::fs::read_to_string(path).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        (entry.format_version == CACHE_FORMAT_VERSION && entry.config == *cfg)
            .then_some(entry.result)
    }

    /// Best-effort: a cache write failure (read-only disk, races) costs a
    /// future recompute, never the current result.
    fn cache_store(&self, cfg: &SimConfig, result: &RunResult) {
        let Some(path) = self.cache_path(cfg) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let entry = CacheEntry {
            format_version: CACHE_FORMAT_VERSION,
            config: cfg.clone(),
            result: result.clone(),
        };
        let Ok(json) = serde_json::to_string_pretty(&entry) else {
            return;
        };
        // Write-then-rename so a concurrent reader never sees a torn file.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, json).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    fn run_one(
        &self,
        worker: usize,
        label: &str,
        cfg: &SimConfig,
    ) -> (Result<RunResult, SimError>, bool, f64) {
        if let Some(hit) = self.cache_lookup(cfg) {
            eprintln!("[sweep {worker}] {label}: cached");
            return (Ok(hit), true, 0.0);
        }
        let started = Instant::now();
        let res = match &self.checkpoints {
            Some((dir, interval)) => run_sim_resumable(
                cfg,
                KernelMode::from_env(),
                shards_from_env(),
                dir,
                *interval,
            ),
            None => run_sim(cfg),
        };
        let ms = started.elapsed().as_secs_f64() * 1e3;
        match &res {
            Ok(r) => {
                self.cache_store(cfg, r);
                eprintln!("[sweep {worker}] {label}: ran in {ms:.0} ms");
            }
            Err(e) => eprintln!("[sweep {worker}] {label}: FAILED ({e})"),
        }
        (res, false, ms)
    }

    /// Runs every `(label, config)` job and returns the results in
    /// submission order. Failures are collected per point — one stalled
    /// configuration does not abort the remaining points.
    ///
    /// # Panics
    ///
    /// Panics only if a worker thread itself panics (i.e. a bug in the
    /// simulator rather than a reported `SimError`).
    pub fn run(&self, jobs: &[(String, SimConfig)]) -> SweepOutcome {
        let started = Instant::now();
        let n = jobs.len();
        let workers = self.workers.min(n.max(1));
        let slots: Vec<Mutex<Option<Result<RunResult, SimError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = Mutex::new(0usize);
        let tally = Mutex::new((0usize, 0.0f64)); // (cached, busy_ms)

        let work = |worker: usize| loop {
            let i = {
                let mut c = cursor.lock().expect("sweep cursor poisoned");
                if *c >= n {
                    break;
                }
                let i = *c;
                *c += 1;
                i
            };
            let (label, cfg) = &jobs[i];
            let (res, cached, ms) = self.run_one(worker, label, cfg);
            {
                let mut t = tally.lock().expect("sweep tally poisoned");
                t.0 += usize::from(cached);
                t.1 += ms;
            }
            *slots[i].lock().expect("sweep slot poisoned") = Some(res);
        };

        if workers <= 1 {
            // Serial path: identical to the pre-sweep harness, no threads.
            work(0);
        } else {
            std::thread::scope(|s| {
                let work = &work;
                for w in 0..workers {
                    s.spawn(move || work(w));
                }
            });
        }

        let results: Vec<Result<RunResult, SimError>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("sweep slot poisoned")
                    .expect("every submitted job produces a result")
            })
            .collect();
        let (cached, busy_ms) = tally.into_inner().expect("sweep tally poisoned");
        let failed = results.iter().filter(|r| r.is_err()).count();
        SweepOutcome {
            stats: SweepStats {
                points: n,
                jobs: workers,
                cached,
                failed,
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                busy_ms,
            },
            results,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcsim_core::MechanismConfig;

    #[test]
    fn fnv1a_is_stable() {
        // Pinned values: the on-disk cache outlives any single build.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn cache_key_tracks_every_field() {
        let base = SimConfig::quick(16, MechanismConfig::baseline(), "fft");
        let k0 = cache_key(&base).unwrap();
        assert_eq!(cache_key(&base.clone()).unwrap(), k0, "deterministic");
        let mut seed = base.clone();
        seed.seed += 1;
        assert_ne!(cache_key(&seed).unwrap(), k0);
        let mut cycles = base.clone();
        cycles.measure_cycles += 1;
        assert_ne!(cache_key(&cycles).unwrap(), k0);
        let mech = SimConfig::quick(16, MechanismConfig::complete_noack(), "fft");
        assert_ne!(cache_key(&mech).unwrap(), k0);
    }

    #[test]
    fn checkpointed_sweep_is_byte_identical_and_resumes() {
        use rcsim_system::{SessionSnapshot, SimSession};

        let cfg = SimConfig {
            warmup_cycles: 300,
            measure_cycles: 900,
            ..SimConfig::quick(16, MechanismConfig::complete_noack(), "fft")
        };
        let dir = std::env::temp_dir().join(format!("rcsim-sweep-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jobs = [("point".to_owned(), cfg.clone())];

        let plain = SweepRunner::new(1, None).run(&jobs);
        let ckpt = SweepRunner::new(1, None)
            .with_checkpoints(dir.clone(), 250)
            .run(&jobs);
        assert_eq!(
            serde_json::to_string(plain.results[0].as_ref().unwrap()).unwrap(),
            serde_json::to_string(ckpt.results[0].as_ref().unwrap()).unwrap(),
            "checkpointed run diverged from the plain run"
        );

        // A half-finished checkpoint left behind by a "killed" run is
        // picked up: plant one mid-run at the exact path the resumable
        // driver uses, rerun, and the result must still be identical.
        let json = serde_json::to_string(&cfg).unwrap();
        let path = dir.join(format!("{:016x}.ckpt", fnv1a(json.as_bytes())));
        let mut half = SimSession::new(&cfg, None, KernelMode::Event, 1).unwrap();
        half.run_until(700).unwrap();
        half.checkpoint().save(&path).unwrap();
        assert!(SessionSnapshot::load(&path).is_some());
        let resumed = SweepRunner::new(1, None)
            .with_checkpoints(dir.clone(), 250)
            .run(&jobs);
        assert_eq!(
            serde_json::to_string(plain.results[0].as_ref().unwrap()).unwrap(),
            serde_json::to_string(resumed.results[0].as_ref().unwrap()).unwrap(),
            "resumed run diverged from the plain run"
        );
        assert!(!path.exists(), "completed point must remove its checkpoint");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn env_free_runner_clamps_workers() {
        let r = SweepRunner::new(0, None);
        assert_eq!(r.workers(), 1);
        assert!(r.cache_dir().is_none());
        assert!(r
            .cache_path(&SimConfig::quick(16, MechanismConfig::baseline(), "fft"))
            .is_none());
    }
}
