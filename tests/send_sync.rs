//! C-SEND-SYNC: the simulator's public types must stay thread-portable so
//! experiment harnesses can parallelize runs across threads.

use reactive_circuits::prelude::*;

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_types_are_send_sync() {
    assert_send_sync::<Mesh>();
    assert_send_sync::<MechanismConfig>();
    assert_send_sync::<NodeId>();
    assert_send_sync::<MessageClass>();
    assert_send_sync::<reactive_circuits::core::circuit::RouterCircuits>();
    assert_send_sync::<reactive_circuits::core::circuit::CircuitHandle>();
}

#[test]
fn simulators_are_send() {
    assert_send::<Network>();
    assert_send::<Chip>();
    assert_send_sync::<RunResult>();
    assert_send_sync::<SimConfig>();
    assert_send_sync::<Workload>();
    assert_send_sync::<reactive_circuits::protocol::L1Cache>();
    assert_send_sync::<reactive_circuits::protocol::L2Bank>();
    assert_send_sync::<reactive_circuits::power::EnergyModel>();
    assert_send_sync::<reactive_circuits::stats::Accumulator>();
}

#[test]
fn sweep_engine_types_are_thread_portable() {
    // The sweep runner fans jobs across scoped threads, so everything
    // crossing the worker boundary must be Send (+ Sync for shared refs).
    assert_send_sync::<rcsim_bench::SweepRunner>();
    assert_send_sync::<rcsim_bench::SweepStats>();
    assert_send_sync::<rcsim_bench::SweepOutcome>();
    assert_send_sync::<rcsim_bench::PointSpec>();
    assert_send_sync::<Result<RunResult, reactive_circuits::system::SimError>>();
    assert_send_sync::<Vec<(String, SimConfig)>>();
}

#[test]
fn errors_are_well_behaved() {
    fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<reactive_circuits::core::ConfigError>();
    assert_error::<reactive_circuits::core::circuit::ReserveError>();
    assert_error::<reactive_circuits::system::SimError>();
}
