//! Directory-based MESI coherence over a distributed, inclusive L2
//! (the paper's Table 2/Table 3 memory system).
//!
//! The crate models, cycle by cycle:
//!
//! * private L1 caches (32 KB, 4-way, 2-cycle hit, pseudo-LRU) with a
//!   write-back buffer that keeps evicted lines alive until the L2
//!   acknowledges them;
//! * shared L2 banks (1 MB/bank, 16-way, 7-cycle hit, inclusive) holding
//!   the directory (owner + sharer set per line), per-line busy states and
//!   request queues — the *line-busy-until-`L1_DATA_ACK`* behaviour that
//!   the NoAck optimisation of §4.6 removes;
//! * memory controllers with the paper's 160-cycle latency.
//!
//! Every message flow of Table 3 is produced: plain L1 miss
//! (request → `L2_Replies` → `L1_DATA_ACK`), dirty-owner forwarding
//! (request → forward → `L1_TO_L1` → `L1_DATA_ACK`, with the now-useless
//! circuit undone), invalidations (`L1_INV_ACK`), L1 write-backs
//! (`L2_WB_ACK`), and L2 miss/replacement traffic to memory (`MEMORY`).
//!
//! Networking is abstracted behind the [`Port`] trait so the protocol can
//! be unit-tested with an in-memory loopback and wired to the
//! cycle-accurate NoC by `rcsim-system`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod l1;
mod l2;
mod mem;
mod msg;
mod plru;

pub use cache::{CacheArray, CacheConfig};
pub use config::ProtocolConfig;
pub use l1::{Access, L1Cache, L1Snapshot, L1Stats, MissDone};
pub use l2::{L2Bank, L2Snapshot, L2Stats};
pub use mem::{MemSnapshot, MemStats, MemoryController};
pub use msg::{Msg, Port, ReqKind};
pub use plru::TreePlru;
