//! Packets and flits.

use rcsim_core::circuit::{CircuitHandle, CircuitKey};
use rcsim_core::{Cycle, MessageClass, NodeId, Vnet};
use serde::{Deserialize, Serialize};

/// Unique packet identifier (monotonic per network instance).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PacketId(pub u64);

/// What a caller submits to [`crate::Network::inject`]: everything about a
/// message except the identifiers the network assigns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node (for scroungers, the intermediate hop; the final
    /// destination lives in `scrounger_final`).
    pub dst: NodeId,
    /// Coherence message class (fixes VN, size and circuit eligibility).
    pub class: MessageClass,
    /// Cache-line address of the transaction (part of the circuit key).
    pub block: u64,
    /// Opaque token echoed back on delivery (protocol transaction id).
    pub token: u64,
    /// Expected responder turnaround for circuit reservation (L2 hit or
    /// memory latency); only meaningful for circuit-building requests.
    pub turnaround: u32,
    /// For replies: the circuit key to ride, if the sender's NI holds a
    /// built circuit for this transaction.
    pub circuit_key: Option<CircuitKey>,
    /// Whether this packet should be classified in the Figure 6 reply
    /// outcome statistics (the protocol sets this to `false` for replies
    /// whose outcome was already recorded, e.g. `L1_TO_L1` data after an
    /// `undone` circuit).
    pub count_outcome: bool,
    /// Overrides the class-derived length in flits (e.g. the `MEMORY`
    /// acknowledgement of an L2 write-back is a single flit even though
    /// the class usually carries a line).
    pub flits_override: Option<u32>,
}

impl PacketSpec {
    /// A packet of `class` from `src` to `dst` with default metadata.
    pub fn new(src: NodeId, dst: NodeId, class: MessageClass) -> Self {
        Self {
            src,
            dst,
            class,
            block: 0,
            token: 0,
            turnaround: 7,
            circuit_key: None,
            count_outcome: true,
            flits_override: None,
        }
    }

    /// Overrides the packet length in flits.
    pub fn with_flits(mut self, flits: u32) -> Self {
        self.flits_override = Some(flits);
        self
    }

    /// Excludes this packet from the reply-outcome statistics.
    pub fn without_outcome(mut self) -> Self {
        self.count_outcome = false;
        self
    }

    /// Sets the cache-line address.
    pub fn with_block(mut self, block: u64) -> Self {
        self.block = block;
        self
    }

    /// Sets the protocol token.
    pub fn with_token(mut self, token: u64) -> Self {
        self.token = token;
        self
    }

    /// Sets the expected responder turnaround.
    pub fn with_turnaround(mut self, turnaround: u32) -> Self {
        self.turnaround = turnaround;
        self
    }

    /// Marks this reply as wanting to use a previously built circuit.
    pub fn with_circuit_key(mut self, key: CircuitKey) -> Self {
        self.circuit_key = Some(key);
        self
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit of a multi-flit packet.
    Head,
    /// Middle flit.
    Body,
    /// Last flit of a multi-flit packet.
    Tail,
    /// Single-flit packet.
    HeadTail,
}

impl FlitKind {
    /// `true` for `Head` and `HeadTail`.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// `true` for `Tail` and `HeadTail`.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }

    /// The kind for flit `seq` of a packet `len` flits long.
    pub fn for_position(seq: u32, len: u32) -> FlitKind {
        match (seq == 0, seq + 1 == len) {
            (true, true) => FlitKind::HeadTail,
            (true, false) => FlitKind::Head,
            (false, true) => FlitKind::Tail,
            (false, false) => FlitKind::Body,
        }
    }
}

/// One 16-byte flow-control unit travelling through the network.
///
/// Flits carry a copy of their packet's metadata (src/dst/class) so router
/// decisions stay local; the circuit-construction handle travels only in
/// the head flit of circuit-building requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Head/body/tail position.
    pub kind: FlitKind,
    /// Flit index within the packet.
    pub seq: u32,
    /// Total flits in the packet.
    pub len: u32,
    /// Source node.
    pub src: NodeId,
    /// Destination node of *this network traversal* (a scrounger's
    /// intermediate hop).
    pub dst: NodeId,
    /// Message class.
    pub class: MessageClass,
    /// Virtual network.
    pub vnet: Vnet,
    /// The virtual channel the flit currently travels on (set by the
    /// sender's switch-traversal stage; the downstream buffer index).
    pub vc: usize,
    /// Circuit being *built* by this request (head flit only; updated at
    /// every router).
    pub circuit: Option<Box<CircuitHandle>>,
    /// Circuit this reply *rides* (looked up at every router input).
    pub on_circuit: Option<CircuitKey>,
    /// For scrounger replies: the real destination to re-inject towards
    /// after ejecting at `dst`.
    pub scrounger_final: Option<NodeId>,
    /// Cache-line address.
    pub block: u64,
    /// Protocol token.
    pub token: u64,
    /// Cycle the packet was enqueued at the source NI.
    pub created_at: Cycle,
    /// Cycle the packet's head entered the network (left the NI queue).
    pub injected_at: Cycle,
    /// Set by the fault layer when the packet is corrupted in transit
    /// (head flit only); the destination NI discards the packet instead
    /// of delivering it and the source retransmits.
    #[serde(default)]
    pub corrupted: bool,
    /// Recorded source route (head flit only): the full router sequence
    /// the packet must follow, set by the source NI when DOR would cross a
    /// dead link or router. Routers on the path forward along it; replies
    /// to a detoured request retrace it reversed so the reservation
    /// symmetry of §4.1 survives rerouting (DESIGN.md §10). `None` for the
    /// ordinary DOR case.
    #[serde(default)]
    pub path: Option<Box<Vec<NodeId>>>,
}

/// A fully received packet handed back to the destination's user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delivered {
    /// Packet id.
    pub packet: PacketId,
    /// Source node.
    pub src: NodeId,
    /// This node (destination of the traversal).
    pub dst: NodeId,
    /// Message class.
    pub class: MessageClass,
    /// Cache-line address.
    pub block: u64,
    /// Protocol token.
    pub token: u64,
    /// Enqueue / injection / delivery timestamps.
    pub created_at: Cycle,
    /// Cycle the head flit left the NI queue.
    pub injected_at: Cycle,
    /// Cycle the tail flit reached this NI.
    pub delivered_at: Cycle,
    /// For delivered requests: the circuit-construction record, so the
    /// receiver's NI can register the circuit origin.
    pub circuit: Option<CircuitHandle>,
    /// `true` if this reply arrived riding a circuit.
    pub rode_circuit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_kind_positions() {
        assert_eq!(FlitKind::for_position(0, 1), FlitKind::HeadTail);
        assert_eq!(FlitKind::for_position(0, 5), FlitKind::Head);
        assert_eq!(FlitKind::for_position(2, 5), FlitKind::Body);
        assert_eq!(FlitKind::for_position(4, 5), FlitKind::Tail);
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
        assert!(FlitKind::Head.is_head() && !FlitKind::Head.is_tail());
        assert!(!FlitKind::Body.is_head() && !FlitKind::Body.is_tail());
    }

    #[test]
    fn spec_builders() {
        let s = PacketSpec::new(NodeId(1), NodeId(2), MessageClass::L1Request)
            .with_block(0x1040)
            .with_token(77)
            .with_turnaround(160);
        assert_eq!(s.block, 0x1040);
        assert_eq!(s.token, 77);
        assert_eq!(s.turnaround, 160);
        assert!(s.circuit_key.is_none());
    }
}
