//! # Reactive Circuits
//!
//! A from-scratch reproduction of *"Dynamic construction of circuits for
//! reactive traffic in homogeneous CMPs"* (Ortín-Obón et al., DATE 2014,
//! and its extended version): a cycle-accurate mesh NoC whose routers let
//! coherence **requests reserve circuits for their replies**, so replies
//! cross each router in a single cycle — plus everything needed to
//! evaluate it like the paper does: a MESI directory protocol over
//! distributed L2 banks, trace-driven cores, synthetic PARSEC/SPLASH-2
//! -shaped workloads, and DSENT-like area/energy models.
//!
//! This umbrella crate re-exports the workspace libraries:
//!
//! | crate | contents |
//! |---|---|
//! | [`rcsim_core`] | base types, mesh, XY/YX routing, the circuit engine |
//! | [`rcsim_noc`] | the 4-stage wormhole VC router network + Reactive Circuits |
//! | [`rcsim_protocol`] | MESI directory, L1/L2 caches, memory controllers |
//! | [`rcsim_workload`] | deterministic synthetic application profiles |
//! | [`rcsim_power`] | router area + network energy models |
//! | [`rcsim_system`] | chip assembly and the experiment driver |
//! | [`rcsim_stats`] | accumulators, histograms, confidence intervals |
//!
//! # Quick start
//!
//! ```
//! use reactive_circuits::prelude::*;
//!
//! let baseline = run_sim(&SimConfig::quick(16, MechanismConfig::baseline(), "fft"))?;
//! let circuits = run_sim(&SimConfig::quick(16, MechanismConfig::complete_noack(), "fft"))?;
//! let speedup = circuits.speedup_over(&baseline);
//! assert!(speedup > 0.9); // short windows are noisy; full runs show ~+4%
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rcsim_core as core;
pub use rcsim_noc as noc;
pub use rcsim_power as power;
pub use rcsim_protocol as protocol;
pub use rcsim_stats as stats;
pub use rcsim_system as system;
pub use rcsim_workload as workload;

/// The most common imports for experiments.
pub mod prelude {
    pub use rcsim_core::{
        CircuitMode, MechanismConfig, Mesh, MessageClass, NodeId, TimedPolicy, Topology,
        TopologySpec,
    };
    pub use rcsim_noc::{
        CircuitOutcome, FaultConfig, FaultStats, HealthReport, MessageGroup, Network, NocConfig,
        PacketSpec, StuckPortEvent, WatchdogConfig,
    };
    pub use rcsim_power::{area_savings, EnergyModel, RouterArea};
    pub use rcsim_stats::{geometric_mean, Accumulator};
    pub use rcsim_system::{
        run_sim, run_sim_resumable, Chip, ExternalSummary, IngressConfig, KernelMode,
        OpenLoopConfig, OverloadReport, RunResult, SessionSnapshot, SimConfig, SimError,
        SimSession,
    };
    pub use rcsim_workload::{workload_names, ArrivalProcess, Workload};
}
