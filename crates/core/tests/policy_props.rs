//! Property-based tests for the adaptive policy layer (DESIGN.md §14):
//! the controller's decision function is pure, hysteresis + min-dwell
//! bound how often a region can switch, and the policy-triggered circuit
//! teardown conserves circuits exactly — torn circuits vanish from every
//! router on their path, surviving circuits keep every entry — checked
//! against an independent shadow model.

use proptest::prelude::*;
use rcsim_core::circuit::{CircuitKey, ReserveRequest, RouterCircuits};
use rcsim_core::routing::Routing;
use rcsim_core::{
    AdaptiveConfig, CircuitMode, NodeId, PolicyController, RegionMode, RegionSample, TopologySpec,
};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Controller properties
// ---------------------------------------------------------------------------

fn cfg_strategy() -> impl Strategy<Value = AdaptiveConfig> {
    (1u64..500, 1usize..8, 0u64..2_000, 0u64..2_000, 0u64..1_000).prop_map(
        |(epoch, regions, a, b, dwell)| AdaptiveConfig {
            decision_epoch: epoch,
            regions,
            hot_enter: a.max(b).max(1),
            hot_exit: a.min(b),
            min_dwell: dwell,
            detour: true,
            mech_switch: true,
        },
    )
}

fn samples_strategy(regions: usize) -> impl Strategy<Value = Vec<RegionSample>> {
    prop::collection::vec(
        (0u64..40, 0u64..40, 1u64..5).prop_map(|(buffered, backlog, routers)| RegionSample {
            buffered_flits: buffered,
            ni_backlog: backlog,
            circuit_entries: 0,
            routers,
        }),
        regions..=regions,
    )
}

/// A whole drive: one sample vector per decision epoch.
fn drive_strategy() -> impl Strategy<Value = (AdaptiveConfig, Vec<Vec<RegionSample>>)> {
    cfg_strategy().prop_flat_map(|cfg| {
        let regions = cfg.regions;
        (
            Just(cfg),
            prop::collection::vec(samples_strategy(regions), 1..40),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Purity: identical (state, now, samples) produce identical verdicts
    /// and identical successor state, at every step of an arbitrary
    /// drive — the controller is a deterministic state machine with no
    /// hidden inputs.
    #[test]
    fn decide_is_pure((cfg, drive) in drive_strategy()) {
        let mut a = PolicyController::new(cfg, cfg.regions);
        let mut b = PolicyController::new(cfg, cfg.regions);
        for (i, samples) in drive.iter().enumerate() {
            let now = (i as u64 + 1) * cfg.decision_epoch;
            // A third copy forked from the current state must agree too:
            // the decision depends on the state, not on how it was
            // reached.
            let mut fork = a.clone();
            let da = a.decide(now, samples);
            let db = b.decide(now, samples);
            let df = fork.decide(now, samples);
            prop_assert_eq!(&da, &db, "two identical drives diverged at step {}", i);
            prop_assert_eq!(&da, &df, "forked controller diverged at step {}", i);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a, &fork);
        }
    }

    /// Hysteresis and min-dwell: a region only heats at `score >=
    /// hot_enter`, only cools at `score <= hot_exit`, consecutive
    /// switches of one region are at least `min_dwell` cycles apart, and
    /// the total switch count over a drive is bounded by the dwell clock
    /// (`1 + elapsed / min_dwell` per region).
    #[test]
    fn hysteresis_and_dwell_bound_switching((cfg, drive) in drive_strategy()) {
        let mut c = PolicyController::new(cfg, cfg.regions);
        let mut last_switch = vec![None::<u64>; cfg.regions];
        let mut switches = vec![0u64; cfg.regions];
        let mut elapsed = 0;
        for (i, samples) in drive.iter().enumerate() {
            let now = (i as u64 + 1) * cfg.decision_epoch;
            elapsed = now;
            let before: Vec<RegionMode> =
                (0..cfg.regions).map(|r| c.mode(r)).collect();
            for d in c.decide(now, samples) {
                prop_assert_eq!(d.score, samples[d.region].score());
                prop_assert_eq!(d.mode, c.mode(d.region), "verdict disagrees with state");
                if d.switched {
                    match d.mode {
                        RegionMode::Hot => prop_assert!(
                            before[d.region] == RegionMode::Calm
                                && d.score >= cfg.hot_enter,
                            "heated below hot_enter"
                        ),
                        RegionMode::Calm => prop_assert!(
                            before[d.region] == RegionMode::Hot
                                && d.score <= cfg.hot_exit,
                            "cooled above hot_exit"
                        ),
                    }
                    if let Some(prev) = last_switch[d.region] {
                        prop_assert!(
                            now - prev >= cfg.min_dwell,
                            "region {} switched {} cycles after its last switch \
                             (min_dwell {})",
                            d.region, now - prev, cfg.min_dwell
                        );
                    }
                    last_switch[d.region] = Some(now);
                    switches[d.region] += 1;
                } else {
                    prop_assert_eq!(d.mode, before[d.region], "mode changed without a switch");
                }
            }
        }
        if let Some(bound) = elapsed.checked_div(cfg.min_dwell) {
            for (r, &s) in switches.iter().enumerate() {
                prop_assert!(
                    s <= 1 + bound,
                    "region {r} switched {s} times in {elapsed} cycles \
                     (min_dwell {})",
                    cfg.min_dwell
                );
            }
        }
    }

    /// The hysteresis band itself: while a region's score stays strictly
    /// inside (hot_exit, hot_enter), the region never switches no matter
    /// how long the drive runs.
    #[test]
    fn scores_inside_the_band_never_switch(
        cfg in cfg_strategy().prop_filter("need a real band", |c| c.hot_enter > c.hot_exit + 1),
        steps in 1usize..60,
    ) {
        let mut c = PolicyController::new(cfg, cfg.regions);
        // A score strictly inside the band: buffered = score/SCORE_SCALE
        // rounded to land between the thresholds with routers = 1.
        let mid = (cfg.hot_exit + cfg.hot_enter) / 2;
        let sample = RegionSample {
            buffered_flits: mid.div_ceil(rcsim_core::SCORE_SCALE),
            ni_backlog: 0,
            circuit_entries: 0,
            routers: 1,
        };
        let samples = vec![sample; cfg.regions];
        prop_assume!(sample.score() > cfg.hot_exit && sample.score() < cfg.hot_enter);
        for i in 0..steps {
            for d in c.decide((i as u64 + 1) * cfg.decision_epoch, &samples) {
                prop_assert!(!d.switched, "switched inside the hysteresis band");
                prop_assert_eq!(d.mode, RegionMode::Calm);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Teardown conservation vs a shadow model
// ---------------------------------------------------------------------------

/// One established circuit in the shadow model: its key, the reply path
/// it was reserved along, and the (router, in_port, out_port) entries it
/// holds.
struct ShadowCircuit {
    key: CircuitKey,
    entries: Vec<(NodeId, usize, usize)>,
    in_use_at: Option<usize>,
}

/// The per-router reservations a reply travelling dst→src writes, like
/// the NoC's construction pass: at each router the reply arrives from
/// the previous hop (or the dst tile's local port) and leaves towards
/// the next (or ejects at the requestor).
fn reply_entries(
    topo: &rcsim_core::Topology,
    src: NodeId,
    dst: NodeId,
) -> Vec<(NodeId, usize, usize)> {
    let path = topo.route_path(dst, src, Routing::Yx);
    let mut out = Vec::with_capacity(path.len());
    for (j, r) in path.iter().enumerate() {
        let in_port = if j == 0 {
            topo.eject_port(dst)
        } else {
            topo.port_between(path[j - 1], *r)
                .expect("adjacent routers")
        };
        let out_port = if j + 1 < path.len() {
            topo.port_between(*r, path[j + 1])
                .expect("adjacent routers")
        } else {
            topo.eject_port(src)
        };
        out.push((*r, in_port, out_port));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Policy teardown conserves circuits. Circuits are reserved along
    /// YX reply paths on a 4×4 mesh (failed reservations undo their
    /// prefix, like the NoC). An arbitrary set of routers then goes hot
    /// and every circuit crossing it is torn down by undo along its
    /// path — in-use circuits defer to `end_use`, exactly like the
    /// network's origin-driven teardown. Afterwards, torn circuits must
    /// hold no entry anywhere, survivors must hold exactly their original
    /// entries, and per-router totals must match the shadow.
    #[test]
    fn region_teardown_conserves_circuits(
        pairs in prop::collection::vec((0u16..16, 0u16..16), 1..24),
        in_use in prop::collection::vec(any::<bool>(), 24),
        hot in prop::collection::vec(0u16..16, 0..6),
    ) {
        let topo = TopologySpec::Mesh.build(16).expect("4x4 mesh");
        let mut tables: Vec<RouterCircuits> = (0..topo.routers())
            .map(|_| RouterCircuits::new(CircuitMode::Fragmented, 2, 2))
            .collect();
        let mut shadow: Vec<ShadowCircuit> = Vec::new();

        for (i, &(s, d)) in pairs.iter().enumerate() {
            if s == d {
                continue;
            }
            let (src, dst) = (NodeId(s), NodeId(d));
            let key = CircuitKey { requestor: src, block: i as u64 * 64 };
            let entries = reply_entries(&topo, src, dst);
            let mut written = Vec::new();
            let mut ok = true;
            for &(r, in_port, out_port) in &entries {
                let req = ReserveRequest {
                    key,
                    source: dst,
                    in_port,
                    out_port,
                    window: None,
                    max_extra_shift: 0,
                };
                if tables[r.index()].try_reserve(&req).is_ok() {
                    written.push(r);
                } else {
                    ok = false;
                    break;
                }
            }
            if !ok {
                // Construction failed mid-path: the NoC undoes the
                // prefix; nothing of this circuit may remain.
                for r in written {
                    prop_assert!(tables[r.index()].undo(key).is_some());
                }
                continue;
            }
            let in_use_at = if in_use[i % in_use.len()] && !entries.is_empty() {
                let (r, in_port, _) = entries[i % entries.len()];
                prop_assert!(tables[r.index()].begin_use(in_port, key));
                Some(i % entries.len())
            } else {
                None
            };
            shadow.push(ShadowCircuit { key, entries, in_use_at });
        }

        // An arbitrary region goes hot: tear down every circuit whose
        // path crosses a hot router, via undo at each router on the path
        // (the §4.4 construction undo, driven from the policy layer).
        let hot: BTreeSet<NodeId> = hot.into_iter().map(NodeId).collect();
        let (doomed, kept): (Vec<&ShadowCircuit>, Vec<&ShadowCircuit>) = shadow
            .iter()
            .partition(|c| c.entries.iter().any(|&(r, ..)| hot.contains(&r)));
        for c in &doomed {
            for (j, &(r, in_port, _)) in c.entries.iter().enumerate() {
                let undone = tables[r.index()].undo(c.key);
                if c.in_use_at == Some(j) {
                    // Streaming through this router: the undo defers and
                    // the entry dies when the stream ends.
                    prop_assert!(undone.is_none(), "in-use entry ripped mid-stream");
                    prop_assert!(tables[r.index()].end_use(in_port, c.key).is_some());
                } else {
                    prop_assert!(undone.is_some(), "live entry already missing");
                }
            }
        }

        // Conservation: doomed circuits hold nothing anywhere; survivors
        // hold exactly their original entries (undo by key would find
        // them); per-router totals match the shadow's bookkeeping.
        for c in &doomed {
            for &(r, _, _) in &c.entries {
                prop_assert!(
                    tables[r.index()].undo(c.key).is_none(),
                    "torn circuit left an entry behind"
                );
            }
        }
        for (r, table) in tables.iter().enumerate() {
            let expect: usize = kept
                .iter()
                .map(|c| c.entries.iter().filter(|&&(er, ..)| er.index() == r).count())
                .sum();
            prop_assert_eq!(
                table.total_entries(),
                expect,
                "router {} entry count diverged from the shadow",
                r
            );
        }
        // And the survivors themselves are fully intact: undoing them now
        // must succeed at every router on their path.
        for c in &kept {
            for (j, &(r, in_port, _)) in c.entries.iter().enumerate() {
                let undone = tables[r.index()].undo(c.key);
                if c.in_use_at == Some(j) {
                    prop_assert!(undone.is_none());
                    prop_assert!(tables[r.index()].end_use(in_port, c.key).is_some());
                } else {
                    prop_assert!(undone.is_some(), "surviving circuit lost an entry");
                }
            }
        }
        for t in &tables {
            prop_assert_eq!(t.total_entries(), 0, "teardown left entries behind");
        }
    }
}
