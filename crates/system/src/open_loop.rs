//! Open-loop external traffic at the chip level: seeded edge arrival
//! streams feeding the NoC's bounded-ingress layer, a request/reply RPC
//! model over the circuit fabric, the client retry-after contract, and
//! full conservation accounting.
//!
//! External work models the ROADMAP "datacenter tile" scenario: requests
//! arrive at the mesh's west edge from outside the chip (a NIC, another
//! socket) at a configured rate, *independent of core state*. Each
//! admitted arrival becomes a 1-flit `L1Request`-class packet from its
//! edge NI to a uniformly chosen interior server tile; the request
//! reserves a circuit on its way (exactly like a coherence request), the
//! server "computes" for [`OpenLoopConfig::service_time`] cycles, and the
//! 5-flit `L2Reply`-class response rides the circuit back to the edge.
//! The transaction's end-to-end latency is measured from edge admission
//! to reply delivery, so time spent queued at a congested ingress is part
//! of the tail — the quantity the overload bench tracks against its SLO.
//!
//! External packets never touch the coherence protocol: their tokens
//! carry [`EXT_TOKEN_BIT`], and the chip's delivery fan-out intercepts
//! them before the protocol payload lookup.
//!
//! Conservation is the load-bearing invariant (ISSUE 6): every arrival
//! the streams produce is, at any instant, in exactly one of six places —
//! completed, shed, given up after rejections, queued at ingress,
//! in flight in the network / in service, or awaiting a client retry.
//! [`OpenLoopState::summary`] computes the residue; tests and the
//! overload bench assert it is zero at every load point. (The identity
//! assumes a fault-free network: a fault layer that abandons packets
//! would surface here as a positive residue, by design.)

use rcsim_core::circuit::CircuitKey;
use rcsim_core::{Cycle, MessageClass, NodeId};
use rcsim_noc::{Admission, IngressConfig, Network, PacketSpec, ReleasedArrival};
use rcsim_stats::LatencyStat;
use rcsim_workload::{ArrivalProcess, ArrivalSnapshot, ArrivalStream};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// High bit of a packet token, marking external (open-loop) traffic so
/// the chip can route deliveries around the coherence protocol.
pub const EXT_TOKEN_BIT: u64 = 1 << 63;

/// External block addresses live above every workload region (private
/// `0x1_…`, shared `0x2_…`), so external circuit keys never collide with
/// coherence circuit keys.
const EXT_BLOCK_BASE: u64 = 0x4_0000_0000;
/// Per-edge stride of the external block region.
const EXT_BLOCK_STRIDE: u64 = 0x100_0000;

/// Configuration of the open-loop external-traffic layer (an optional
/// part of `SimConfig`; `None` keeps runs purely closed-loop).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopConfig {
    /// The arrival process each west-edge node runs (identically
    /// parameterised, independently seeded).
    pub process: ArrivalProcess,
    /// Edge ingress: queue bound, token-bucket admission, shed timeout,
    /// backpressure threshold, retry backoff.
    pub ingress: IngressConfig,
    /// Cycles a server tile "computes" between request delivery and
    /// reply injection.
    pub service_time: u64,
    /// End-to-end latency SLO bound, cycles (admission → reply
    /// delivered); completions within it count toward goodput-in-SLO.
    pub slo: u64,
    /// How many times a rejected arrival re-offers (honouring each
    /// rejection's `retry_after`) before giving up.
    pub max_client_retries: u32,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            process: ArrivalProcess::Poisson { rate: 0.05 },
            ingress: IngressConfig::default(),
            service_time: 20,
            slo: 1_000,
            max_client_retries: 3,
        }
    }
}

impl OpenLoopConfig {
    /// A config offering `rate` arrivals/cycle/edge with the token bucket
    /// refilling at the same rate — admission matched to offered load.
    pub fn poisson(rate: f64) -> Self {
        let mut cfg = Self {
            process: ArrivalProcess::Poisson { rate },
            ..Self::default()
        };
        cfg.ingress.tokens_per_kilocycle = (rate * 1024.0).ceil() as u64;
        cfg
    }
}

/// Where an in-network external packet is headed.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
enum ExtPacket {
    /// Request travelling edge → server.
    Request { edge: NodeId, arrived_at: Cycle },
    /// Reply travelling server → edge.
    Reply { arrived_at: Cycle },
}

/// A transaction waiting out its service time at a server tile.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct InService {
    due: Cycle,
    server: NodeId,
    edge: NodeId,
    block: u64,
    arrived_at: Cycle,
}

/// A rejected arrival waiting out its retry-after backoff.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PendingRetry {
    due: Cycle,
    edge: NodeId,
    dst: NodeId,
    block: u64,
    /// Offers made so far (≥ 1).
    attempts: u32,
}

/// Chip-side open-loop driver state. One instance per chip, advanced by
/// [`OpenLoopState::pre_net_tick`] every cycle (both kernels) and fed
/// deliveries by [`OpenLoopState::on_delivered`].
pub(crate) struct OpenLoopState {
    cfg: OpenLoopConfig,
    edges: Vec<NodeId>,
    servers: Vec<NodeId>,
    streams: Vec<ArrivalStream>,
    retries: Vec<PendingRetry>,
    in_service: Vec<InService>,
    in_net: HashMap<u64, ExtPacket>,
    next_token: u64,
    released_buf: Vec<ReleasedArrival>,
    circuits_enabled: bool,

    // Cumulative counters (never reset; conservation runs from cycle 0).
    offered_first: u64,
    reoffers: u64,
    gave_up: u64,
    completed: u64,

    // Measurement-window metrics (zeroed by `reset_window`).
    completed_measured: u64,
    completed_in_slo: u64,
    latency: LatencyStat,
}

/// External end-to-end latency histogram: 20-cycle bins to 10k cycles,
/// wide enough that p99.9 under saturation stays below the overflow bin.
fn ext_latency_stat() -> LatencyStat {
    LatencyStat::new(20.0, 500)
}

impl OpenLoopState {
    /// Builds the driver and installs the ingress layer on `net`.
    /// `edges` must be the ingress edge list (west column); `servers` is
    /// every other node. Arrival streams are seeded per edge from `seed`.
    pub(crate) fn new(
        cfg: OpenLoopConfig,
        seed: u64,
        edges: Vec<NodeId>,
        servers: Vec<NodeId>,
        circuits_enabled: bool,
        net: &mut Network,
    ) -> Self {
        assert!(!servers.is_empty(), "open loop needs interior server tiles");
        net.configure_ingress(cfg.ingress, edges.clone());
        let streams = (0..edges.len())
            .map(|i| ArrivalStream::new(cfg.process, seed, i, edges.len()))
            .collect();
        Self {
            cfg,
            edges,
            servers,
            streams,
            retries: Vec::new(),
            in_service: Vec::new(),
            in_net: HashMap::new(),
            next_token: 0,
            released_buf: Vec::new(),
            circuits_enabled,
            offered_first: 0,
            reoffers: 0,
            gave_up: 0,
            completed: 0,
            completed_measured: 0,
            completed_in_slo: 0,
            latency: ext_latency_stat(),
        }
    }

    fn ext_block(&self, edge_index: usize, seq: u64) -> u64 {
        EXT_BLOCK_BASE + edge_index as u64 * EXT_BLOCK_STRIDE + (seq % EXT_BLOCK_STRIDE)
    }

    /// Handles one typed admission outcome for an offer that has been
    /// made `attempts` times already (including this one).
    fn handle_offer_outcome(
        &mut self,
        outcome: Admission,
        now: Cycle,
        edge: NodeId,
        dst: NodeId,
        block: u64,
        attempts: u32,
    ) {
        if let Admission::Rejected { retry_after, .. } = outcome {
            if attempts > self.cfg.max_client_retries {
                self.gave_up += 1;
            } else {
                self.retries.push(PendingRetry {
                    due: now + retry_after.max(1),
                    edge,
                    dst,
                    block,
                    attempts,
                });
            }
        }
    }

    /// One cycle of open-loop work, run before `Network::tick` so
    /// injections land in the same cycle under both kernels: inject due
    /// service replies, re-offer due client retries, poll every arrival
    /// stream (fixed edge order), then drain the ingress layer and inject
    /// whatever it released.
    pub(crate) fn pre_net_tick(&mut self, net: &mut Network, now: Cycle) {
        // 1. Service completions inject their replies.
        let mut due_service = Vec::new();
        self.in_service.retain(|s| {
            if s.due <= now {
                due_service.push(*s);
                false
            } else {
                true
            }
        });
        for s in due_service {
            let token = EXT_TOKEN_BIT | self.next_token;
            self.next_token += 1;
            let mut spec = PacketSpec::new(s.server, s.edge, MessageClass::L2Reply)
                .with_block(s.block)
                .with_token(token);
            if self.circuits_enabled {
                spec = spec.with_circuit_key(CircuitKey {
                    requestor: s.edge,
                    block: s.block,
                });
            }
            net.inject(spec);
            self.in_net.insert(
                token,
                ExtPacket::Reply {
                    arrived_at: s.arrived_at,
                },
            );
        }

        // 2. Backed-off clients re-offer.
        let mut due_retries = Vec::new();
        self.retries.retain(|r| {
            if r.due <= now {
                due_retries.push(*r);
                false
            } else {
                true
            }
        });
        for r in due_retries {
            self.reoffers += 1;
            let outcome = net.offer_external(r.edge, r.dst, r.block);
            self.handle_offer_outcome(outcome, now, r.edge, r.dst, r.block, r.attempts + 1);
        }

        // 3. Fresh arrivals, one poll per edge per cycle in edge order.
        for i in 0..self.streams.len() {
            let Some(a) = self.streams[i].poll(now, self.servers.len()) else {
                continue;
            };
            self.offered_first += 1;
            let edge = self.edges[i];
            let dst = self.servers[a.dst_index];
            let block = self.ext_block(i, a.seq);
            let outcome = net.offer_external(edge, dst, block);
            self.handle_offer_outcome(outcome, now, edge, dst, block, 1);
        }

        // 4. The ingress layer releases work into the network.
        let mut buf = std::mem::take(&mut self.released_buf);
        buf.clear();
        net.drain_ingress(&mut buf);
        for rel in &buf {
            let token = EXT_TOKEN_BIT | self.next_token;
            self.next_token += 1;
            let spec = PacketSpec::new(rel.edge, rel.dst, MessageClass::L1Request)
                .with_block(rel.block)
                .with_token(token)
                .with_turnaround(self.cfg.service_time as u32);
            net.inject(spec);
            self.in_net.insert(
                token,
                ExtPacket::Request {
                    edge: rel.edge,
                    arrived_at: rel.arrived_at,
                },
            );
        }
        self.released_buf = buf;
    }

    /// Consumes the delivery of an external packet (token has
    /// [`EXT_TOKEN_BIT`] set). Requests enter service; replies complete
    /// their transaction and record its end-to-end latency.
    pub(crate) fn on_delivered(&mut self, node: NodeId, token: u64, block: u64, now: Cycle) {
        match self
            .in_net
            .remove(&token)
            .expect("every external packet has an open-loop record")
        {
            ExtPacket::Request { edge, arrived_at } => {
                self.in_service.push(InService {
                    due: now + self.cfg.service_time,
                    server: node,
                    edge,
                    block,
                    arrived_at,
                });
            }
            ExtPacket::Reply { arrived_at } => {
                self.completed += 1;
                self.completed_measured += 1;
                let lat = now.saturating_sub(arrived_at);
                if lat <= self.cfg.slo {
                    self.completed_in_slo += 1;
                }
                self.latency.record(lat as f64);
            }
        }
    }

    /// Zeroes the measurement-window metrics at the warm-up boundary.
    /// The conservation counters deliberately survive: they must cover
    /// every arrival since cycle 0 or the identity would not close.
    pub(crate) fn reset_window(&mut self) {
        self.completed_measured = 0;
        self.completed_in_slo = 0;
        self.latency = ext_latency_stat();
    }

    /// The full dynamic driver state, for checkpointing. Config-derived
    /// fields (`cfg`, `edges`, `servers`, `circuits_enabled`) are rebuilt
    /// by [`OpenLoopState::new`]; the per-tick `released_buf` is always
    /// empty at tick boundaries and deliberately excluded.
    pub(crate) fn snapshot(&self) -> OpenLoopSnapshot {
        let mut in_net: Vec<(u64, ExtPacket)> = self.in_net.iter().map(|(&t, &p)| (t, p)).collect();
        in_net.sort_unstable_by_key(|&(t, _)| t);
        OpenLoopSnapshot {
            streams: self.streams.iter().map(ArrivalStream::snapshot).collect(),
            retries: self.retries.clone(),
            in_service: self.in_service.clone(),
            in_net,
            next_token: self.next_token,
            offered_first: self.offered_first,
            reoffers: self.reoffers,
            gave_up: self.gave_up,
            completed: self.completed,
            completed_measured: self.completed_measured,
            completed_in_slo: self.completed_in_slo,
            latency: self.latency.clone(),
        }
    }

    /// Overwrites the dynamic state from an [`OpenLoopState::snapshot`]
    /// taken on an identically-configured driver.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's edge count differs.
    pub(crate) fn restore(&mut self, snap: &OpenLoopSnapshot) {
        assert_eq!(
            snap.streams.len(),
            self.streams.len(),
            "checkpoint has a different edge count"
        );
        for (stream, s) in self.streams.iter_mut().zip(&snap.streams) {
            stream.restore(s);
        }
        self.retries = snap.retries.clone();
        self.in_service = snap.in_service.clone();
        self.in_net = snap.in_net.iter().copied().collect();
        self.next_token = snap.next_token;
        self.offered_first = snap.offered_first;
        self.reoffers = snap.reoffers;
        self.gave_up = snap.gave_up;
        self.completed = snap.completed;
        self.completed_measured = snap.completed_measured;
        self.completed_in_slo = snap.completed_in_slo;
        self.latency = snap.latency.clone();
    }

    /// The external-traffic summary, including the conservation residue.
    pub(crate) fn summary(&self, net: &Network) -> crate::report::ExternalSummary {
        let ov = net.overload_report();
        let in_flight = ov.queued
            + self.in_net.len() as u64
            + self.in_service.len() as u64
            + self.retries.len() as u64;
        let accounted = self.completed + ov.shed_timeout + self.gave_up + in_flight;
        crate::report::ExternalSummary {
            offered: self.offered_first,
            reoffers: self.reoffers,
            rejected: ov.rejected(),
            shed: ov.shed_timeout,
            gave_up: self.gave_up,
            completed: self.completed,
            completed_measured: self.completed_measured,
            completed_in_slo: self.completed_in_slo,
            latency_mean: self.latency.mean(),
            latency_p50: self.latency.p50().unwrap_or(0.0),
            latency_p99: self.latency.p99().unwrap_or(0.0),
            latency_p999: self.latency.p999().unwrap_or(0.0),
            in_flight,
            unaccounted: self.offered_first as i64 - accounted as i64,
        }
    }
}

/// Complete dynamic state of the open-loop driver, for checkpointing.
/// The in-network map is sorted by token so the serialized form is
/// deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct OpenLoopSnapshot {
    streams: Vec<ArrivalSnapshot>,
    retries: Vec<PendingRetry>,
    in_service: Vec<InService>,
    in_net: Vec<(u64, ExtPacket)>,
    next_token: u64,
    offered_first: u64,
    reoffers: u64,
    gave_up: u64,
    completed: u64,
    completed_measured: u64,
    completed_in_slo: u64,
    latency: LatencyStat,
}
