#!/usr/bin/env bash
# Continuous-integration gate: formatting, lints, release build, tests.
#
# Mirrors what a PR must pass locally. The wedge-detection test
# (tests/cross_crate.rs::wedged_network_surfaces_as_stalled_error) rides
# in the tier-1 `cargo test` step, so a hung-network regression fails CI
# with a HealthReport dump instead of a timeout.
#
# Usage: scripts/ci.sh [extra cargo args...]
# CARGO=... overrides the cargo invocation (e.g. a wrapper that adds
# --offline and local registry patches on air-gapped builders).

set -euo pipefail
cd "$(dirname "$0")/.."

CARGO=${CARGO:-cargo}

echo "==> cargo fmt --check"
$CARGO fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
$CARGO clippy --workspace --all-targets "$@" -- -D warnings

echo "==> cargo build --release"
$CARGO build --release "$@"

echo "==> cargo test (tier-1)"
$CARGO test -q "$@"

echo "==> cargo test --workspace"
$CARGO test --workspace "$@"

echo "==> bench telemetry smoke (traced fig6 + summary validation)"
# A tiny traced fig6 run must emit its machine-readable summary and a
# Chrome trace; validate_bench then checks every BENCH_*.json written so
# far against scripts/bench_schema.json. Catches a bench binary that
# silently stops writing (or corrupts) its summary.
RC_APPS=blackscholes RC_CYCLES=2000 RC_WARMUP=1000 RC_SMALL_CACHES=1 \
  RC_CORES=16 RC_MAX_CYCLES=10000 \
  $CARGO run --release -q -p rcsim-bench --bin fig6 "$@" > /dev/null
test -s target/experiments/BENCH_fig6.json
test -s target/experiments/fig6_trace.json
$CARGO run --release -q -p rcsim-bench --bin validate_bench "$@"

echo "CI gate passed."
