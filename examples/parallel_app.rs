//! Sweep the mechanism configurations over one parallel application
//! (the per-configuration view behind Figures 6–9).
//!
//! ```text
//! cargo run --release --example parallel_app [app] [cores]
//! # e.g.  cargo run --release --example parallel_app fft 64
//! ```

use reactive_circuits::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let app = args.next().unwrap_or_else(|| "fft".to_owned());
    let cores: u16 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(16);
    if !workload_names().contains(&app.as_str()) {
        eprintln!("unknown app '{app}'; known: {:?}", workload_names());
        std::process::exit(2);
    }

    println!("Configuration sweep — {cores} cores, workload '{app}'\n");
    println!(
        "{:<22} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "configuration", "speedup", "rep.lat", "circuit%", "elim%", "failed%", "energy"
    );

    let mut cfg = SimConfig::quick(cores, MechanismConfig::baseline(), &app);
    cfg.warmup_cycles = 4_000;
    cfg.measure_cycles = 25_000;
    let baseline = run_sim(&cfg)?;

    for mechanism in MechanismConfig::key_configs() {
        cfg.mechanism = mechanism;
        let r = run_sim(&cfg)?;
        println!(
            "{:<22} {:>8.3} {:>9.1} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.3}",
            r.mechanism,
            r.speedup_over(&baseline),
            r.latency["Circuit_Rep"].network,
            100.0 * r.outcomes["circuit"],
            100.0 * r.outcomes["eliminated"],
            100.0 * r.outcomes["failed"],
            r.energy_ratio_over(&baseline),
        );
    }
    println!("\n(rep.lat = mean network latency of circuit-eligible replies, cycles;");
    println!(" energy = network energy normalized to the baseline)");
    Ok(())
}
