#!/usr/bin/env bash
# Continuous-integration gate: formatting, lints, release build, tests.
#
# Mirrors what a PR must pass locally. The wedge-detection test
# (tests/cross_crate.rs::wedged_network_surfaces_as_stalled_error) rides
# in the tier-1 `cargo test` step, so a hung-network regression fails CI
# with a HealthReport dump instead of a timeout.
#
# Usage: scripts/ci.sh [extra cargo args...]
# CARGO=... overrides the cargo invocation (e.g. a wrapper that adds
# --offline and local registry patches on air-gapped builders).

set -euo pipefail
cd "$(dirname "$0")/.."

CARGO=${CARGO:-cargo}

echo "==> cargo fmt --check"
$CARGO fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
$CARGO clippy --workspace --all-targets "$@" -- -D warnings

echo "==> cargo build --release"
$CARGO build --release "$@"

echo "==> cargo test (tier-1)"
$CARGO test -q "$@"

echo "==> cargo test --workspace"
$CARGO test --workspace "$@"

echo "CI gate passed."
