//! Domain decomposition for in-tick sharded parallelism (`RC_SHARDS`).
//!
//! A [`ShardPlan`] partitions a topology's routers into contiguous,
//! index-ordered domains. Because tiles are numbered `router * c + slot`
//! (see [`Topology::tile_of`](crate::topology::Topology::tile_of)), a
//! contiguous router range induces a contiguous tile range, so an NI and
//! its router always land in the same shard — the property that lets a
//! shard tick its NIs and routers with no cross-shard writes (boundary
//! flits and credits are exchanged by a serial merge pass, in fixed
//! shard-then-index order; see `rcsim-noc`'s `Network::tick` and
//! DESIGN.md §13).
//!
//! The plan is a pure function of `(routers, shards)`: no RNG, no
//! host-dependent input. Two constructions with the same arguments are
//! identical, which is what makes the merge order — and therefore the
//! whole simulation — byte-identical at any shard count.

use crate::topology::Topology;
use std::ops::Range;

/// A contiguous partition of a topology's routers (and, via the
/// concentration factor, its tiles) into `shards` balanced domains.
///
/// Ranges are ascending and non-empty: shard `s` owns routers
/// `s·R/K .. (s+1)·R/K` (integer division), so sizes differ by at most
/// one. Iterating shards in order visits every router exactly once, in
/// global index order — the canonical merge order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Router-index boundaries; `bounds[s]..bounds[s + 1]` is shard `s`.
    bounds: Vec<usize>,
    /// Tiles per router, cached from the topology.
    concentration: usize,
}

impl ShardPlan {
    /// Builds the plan for `topology` with the requested shard count,
    /// clamped to `1..=routers` so every shard is non-empty.
    pub fn new(topology: &Topology, shards: usize) -> Self {
        let routers = topology.routers();
        let shards = shards.clamp(1, routers.max(1));
        let bounds = (0..=shards).map(|s| s * routers / shards).collect();
        ShardPlan {
            bounds,
            concentration: topology.concentration(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total routers covered by the plan.
    pub fn routers(&self) -> usize {
        *self.bounds.last().expect("bounds are never empty")
    }

    /// The contiguous router-index range owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shards()`.
    pub fn router_range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// The contiguous tile-index range owned by shard `s` — the router
    /// range scaled by the concentration, so `router_of(tile)` of every
    /// tile in the range lies in [`ShardPlan::router_range`].
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shards()`.
    pub fn tile_range(&self, s: usize) -> Range<usize> {
        (self.bounds[s] * self.concentration)..(self.bounds[s + 1] * self.concentration)
    }

    /// The shard owning router `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside the plan.
    pub fn shard_of_router(&self, r: usize) -> usize {
        assert!(r < self.routers(), "router {r} outside the plan");
        // First boundary strictly above r, minus one.
        self.bounds.partition_point(|&b| b <= r) - 1
    }

    /// The shard owning tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside the plan.
    pub fn shard_of_tile(&self, t: usize) -> usize {
        self.shard_of_router(t / self.concentration)
    }
}

/// Reads the `RC_SHARDS` environment knob: the number of in-tick worker
/// domains (1 = the serial path, the default; values are clamped to the
/// router count at plan construction). Mirrors
/// [`KernelMode::from_env`](crate::sched::KernelMode::from_env): the knob
/// deliberately lives *outside* the serializable configuration structs so
/// cache keys and goldens are shard-invariant, exactly like `RC_KERNEL`
/// and `RC_JOBS`.
pub fn shards_from_env() -> usize {
    std::env::var("RC_SHARDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologySpec;

    fn mesh(cores: u16) -> Topology {
        TopologySpec::Mesh.build(cores).unwrap()
    }

    #[test]
    fn ranges_partition_the_routers() {
        for shards in [1, 2, 3, 4, 7, 16] {
            let plan = ShardPlan::new(&mesh(64), shards);
            let mut covered = Vec::new();
            for s in 0..plan.shards() {
                assert!(!plan.router_range(s).is_empty(), "empty shard {s}");
                covered.extend(plan.router_range(s));
            }
            assert_eq!(covered, (0..64).collect::<Vec<_>>(), "{shards} shards");
        }
    }

    #[test]
    fn shard_count_clamps_to_router_count() {
        let plan = ShardPlan::new(&mesh(16), 64);
        assert_eq!(plan.shards(), 16);
        let plan = ShardPlan::new(&mesh(16), 0);
        assert_eq!(plan.shards(), 1);
    }

    #[test]
    fn tiles_follow_their_router() {
        let t = TopologySpec::CMesh { concentration: 4 }.build(64).unwrap();
        let plan = ShardPlan::new(&t, 4);
        for tile in 0..t.nodes() {
            let router = t.router_of(crate::types::NodeId(tile as u16)).index();
            assert_eq!(
                plan.shard_of_tile(tile),
                plan.shard_of_router(router),
                "tile {tile} split from its router"
            );
        }
        let total: usize = (0..plan.shards()).map(|s| plan.tile_range(s).len()).sum();
        assert_eq!(total, t.nodes());
    }

    #[test]
    fn plan_is_a_pure_function_of_its_inputs() {
        let a = ShardPlan::new(&mesh(64), 4);
        let b = ShardPlan::new(&mesh(64), 4);
        assert_eq!(a, b);
    }
}
