//! Full-system integration tests: every mechanism configuration runs a
//! real coherence workload, stays coherent, and reproduces the paper's
//! qualitative effects.

use rcsim_core::{MechanismConfig, Mesh, Topology};
use rcsim_protocol::ProtocolConfig;
use rcsim_system::{run_sim, Chip, SimConfig};
use rcsim_workload::Workload;

fn quick(cores: u16, mechanism: MechanismConfig, workload: &str) -> SimConfig {
    SimConfig {
        warmup_cycles: 3_000,
        measure_cycles: 15_000,
        ..SimConfig::quick(cores, mechanism, workload)
    }
}

#[test]
fn every_configuration_runs_and_stays_coherent() {
    for mechanism in MechanismConfig::key_configs() {
        let mesh: Topology = Mesh::square(16).unwrap().into();
        let wl = Workload::by_name("canneal", 16, 7).unwrap();
        let mut chip =
            Chip::new(mesh, mechanism, ProtocolConfig::small_for_tests(&mesh), &wl).unwrap();
        chip.run(12_000).expect("chip run must not stall");
        let violations = chip.coherence_violations();
        assert!(
            violations.is_empty(),
            "{}: {:?}",
            mechanism.label(),
            violations
        );
        assert!(
            chip.instructions() > 1_000,
            "{} made no progress",
            mechanism.label()
        );
    }
}

#[test]
fn coherent_under_every_workload() {
    for name in ["fft", "ocean_ncp", "swaptions", "mix"] {
        let mesh: Topology = Mesh::square(16).unwrap().into();
        let wl = Workload::by_name(name, 16, 11).unwrap();
        let mut chip = Chip::new(
            mesh,
            MechanismConfig::complete_noack(),
            ProtocolConfig::small_for_tests(&mesh),
            &wl,
        )
        .unwrap();
        chip.run(12_000).expect("chip run must not stall");
        assert!(chip.coherence_violations().is_empty(), "{name}");
    }
}

#[test]
fn table1_shape_requests_vs_replies() {
    // Roughly half the messages are replies (Table 1: 47% / 53%), and
    // L2_Replies plus L1_DATA_ACKs dominate the reply mix.
    let r = run_sim(&quick(16, MechanismConfig::baseline(), "canneal")).unwrap();
    let total: u64 = r.messages.values().sum();
    let replies: u64 = [
        "L2_Reply",
        "L1_DATA_ACK",
        "L2_WB_ACK",
        "L1_INV_ACK",
        "MEMORY",
        "L1_TO_L1",
    ]
    .iter()
    .filter_map(|k| r.messages.get(*k))
    .sum();
    let frac = replies as f64 / total as f64;
    assert!(
        (0.35..=0.65).contains(&frac),
        "reply fraction {frac:.2} out of range; messages: {:?}",
        r.messages
    );
    assert!(r.messages.get("L2_Reply").copied().unwrap_or(0) > 0);
    assert!(r.messages.get("L1_DATA_ACK").copied().unwrap_or(0) > 0);
}

#[test]
fn network_is_lightly_loaded() {
    // The paper reports nodes injecting fewer than ~4 flits/100 cycles.
    let r = run_sim(&quick(16, MechanismConfig::baseline(), "blackscholes")).unwrap();
    assert!(
        r.load < 8.0,
        "load {} too high for a light workload",
        r.load
    );
    assert!(r.load > 0.0);
}

#[test]
fn complete_circuits_cut_circuit_reply_latency() {
    let base = run_sim(&quick(16, MechanismConfig::baseline(), "canneal")).unwrap();
    let complete = run_sim(&quick(16, MechanismConfig::complete(), "canneal")).unwrap();
    let b = base.latency["Circuit_Rep"].network;
    let c = complete.latency["Circuit_Rep"].network;
    assert!(
        c < b * 0.8,
        "circuit replies should be much faster: baseline {b:.1}, complete {c:.1}"
    );
    // Requests are untouched by the mechanism.
    let br = base.latency["Request"].network;
    let cr = complete.latency["Request"].network;
    assert!(
        (cr - br).abs() / br < 0.35,
        "requests roughly unchanged ({br:.1} vs {cr:.1})"
    );
}

#[test]
fn outcome_breakdown_is_complete_and_sane() {
    let r = run_sim(&quick(16, MechanismConfig::complete_noack(), "canneal")).unwrap();
    let sum: f64 = r.outcomes.values().sum();
    assert!((sum - 1.0).abs() < 1e-9, "fractions sum to 1, got {sum}");
    assert!(
        r.outcomes["circuit"] > 0.1,
        "some replies ride circuits: {:?}",
        r.outcomes
    );
    assert!(
        r.outcomes["eliminated"] > 0.05,
        "NoAck removes acks: {:?}",
        r.outcomes
    );
    assert!(r.outcomes["not_eligible"] > 0.0);
}

#[test]
fn noack_eliminates_acks_and_unblocks_lines() {
    let with_acks = run_sim(&quick(16, MechanismConfig::complete(), "canneal")).unwrap();
    let noack = run_sim(&quick(16, MechanismConfig::complete_noack(), "canneal")).unwrap();
    assert!(noack.acks_elided > 0);
    assert_eq!(with_acks.acks_elided, 0);
    let acks = |r: &rcsim_system::RunResult| r.messages.get("L1_DATA_ACK").copied().unwrap_or(0);
    assert!(
        acks(&noack) < acks(&with_acks),
        "NoAck must reduce ack traffic ({} vs {})",
        acks(&noack),
        acks(&with_acks)
    );
}

#[test]
fn circuit_configs_do_not_slow_the_chip_down() {
    // Figure 9: every complete-circuit version achieves a (small) speedup.
    // With short windows we only assert no significant slowdown and that
    // the best configs beat baseline.
    let base = run_sim(&quick(16, MechanismConfig::baseline(), "canneal")).unwrap();
    for mechanism in [
        MechanismConfig::complete(),
        MechanismConfig::complete_noack(),
        MechanismConfig::slack_delay(1),
        MechanismConfig::ideal(),
    ] {
        let r = run_sim(&quick(16, mechanism, "canneal")).unwrap();
        let s = r.speedup_over(&base);
        assert!(
            s > 0.97,
            "{} slowed the chip down: speedup {s:.3}",
            mechanism.label()
        );
    }
}

#[test]
fn complete_noack_saves_network_energy() {
    // Figure 8: the complete+NoAck configuration reduces network energy.
    let base = run_sim(&quick(16, MechanismConfig::baseline(), "canneal")).unwrap();
    let noack = run_sim(&quick(16, MechanismConfig::complete_noack(), "canneal")).unwrap();
    let ratio = noack.energy_ratio_over(&base);
    assert!(
        ratio < 1.0,
        "Complete_NoAck must save energy, got ratio {ratio:.3}"
    );
    // Fragmented grows the router: no static-energy win.
    let frag = run_sim(&quick(16, MechanismConfig::fragmented(), "canneal")).unwrap();
    assert!(frag.energy_ratio_over(&base) > ratio);
}

#[test]
fn table5_reservations_concentrate_on_first_entries() {
    let r = run_sim(&quick(64, MechanismConfig::complete_noack(), "canneal")).unwrap();
    let total: u64 = r.reservations_at_index.iter().sum();
    assert!(total > 0);
    assert!(
        r.reservations_at_index[0] > r.reservations_at_index[2],
        "first reservations dominate: {:?}",
        r.reservations_at_index
    );
}

#[test]
fn results_serialize_to_json() {
    let r = run_sim(&quick(16, MechanismConfig::complete(), "swaptions")).unwrap();
    let json = serde_json::to_string_pretty(&r).unwrap();
    assert!(json.contains("\"mechanism\": \"Complete\""));
    // And the document round-trips through the parser, measured fields,
    // histogram-backed latency summaries, health report and all.
    let back: rcsim_system::RunResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
}

#[test]
fn undo_on_l2_miss_ablation_runs() {
    let mut mechanism = MechanismConfig::complete_noack();
    mechanism.undo_on_l2_miss = true;
    let r = run_sim(&quick(16, mechanism, "canneal")).unwrap();
    assert!(r.instructions > 0);
    assert!(
        r.outcomes["undone"] > 0.0,
        "L2-miss undos appear: {:?}",
        r.outcomes
    );
}

#[test]
fn sixty_four_core_chip_runs() {
    let r = run_sim(&quick(64, MechanismConfig::slack_delay(1), "fft")).unwrap();
    assert_eq!(r.cores, 64);
    assert!(r.instructions > 10_000);
    assert!(r.outcomes["circuit"] > 0.0);
}

#[test]
fn partitioned_chip_stays_coherent() {
    // The §5.5 usage model: four quadrants, four applications, disjoint
    // shared regions.
    let mesh: Topology = Mesh::square(16).unwrap().into();
    let wl = Workload::partitioned(&["fft", "canneal", "swaptions", "barnes"], 16, 5)
        .expect("valid partitioned workload");
    let mut chip = Chip::new(
        mesh,
        MechanismConfig::complete_noack(),
        ProtocolConfig::small_for_tests(&mesh),
        &wl,
    )
    .unwrap();
    chip.run(12_000).expect("chip run must not stall");
    assert!(chip.coherence_violations().is_empty());
    assert!(chip.instructions() > 1_000);
    let stats = chip.noc_stats();
    assert!(
        stats.outcome_fraction(rcsim_noc::CircuitOutcome::OnCircuit) > 0.05,
        "circuits work inside partitions"
    );
}

#[test]
fn latency_quantiles_are_exposed() {
    let r = {
        let mesh: Topology = Mesh::square(16).unwrap().into();
        let wl = Workload::by_name("fft", 16, 3).unwrap();
        let mut chip = Chip::new(
            mesh,
            MechanismConfig::baseline(),
            ProtocolConfig::small_for_tests(&mesh),
            &wl,
        )
        .unwrap();
        chip.run(10_000).expect("chip run must not stall");
        chip.noc_stats()
    };
    let p50 = r
        .latency_quantile(rcsim_noc::MessageGroup::Request, 0.5)
        .expect("requests flowed");
    let p99 = r
        .latency_quantile(rcsim_noc::MessageGroup::Request, 0.99)
        .expect("requests flowed");
    assert!(p50 <= p99);
    assert!(p50 > 0.0);
}

#[test]
fn unknown_workload_is_an_error() {
    let cfg = SimConfig::quick(16, MechanismConfig::baseline(), "not-an-app");
    assert!(run_sim(&cfg).is_err());
}
