//! Offline stand-in for the rand crate covering the API surface this
//! workspace uses: `Rng` (gen / gen_bool / gen_range), `RngCore`,
//! `SeedableRng` (from_seed / seed_from_u64) and `rngs::StdRng`.
//! Generators are deterministic SplitMix64 streams — statistically fine
//! for simulation workloads, not cryptographic.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::sample_standard(self) < p
    }
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let b = splitmix64(state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic SplitMix64 stream standing in for StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(self.state)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0x243F_6A88_85A3_08D3u64;
            for chunk in seed.chunks(8) {
                let mut b = [0u8; 8];
                b[..chunk.len()].copy_from_slice(chunk);
                state = splitmix64(state ^ u64::from_le_bytes(b)).wrapping_add(1);
            }
            StdRng { state }
        }
    }
}
