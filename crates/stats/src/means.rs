//! Aggregate means used when summarising per-application results.

/// Geometric mean of a sequence of strictly positive values; `None` when the
/// input is empty or contains a non-positive value.
///
/// Speedups across heterogeneous applications are conventionally aggregated
/// with the geometric mean.
///
/// # Examples
///
/// ```
/// let g = rcsim_stats::geometric_mean([1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0u64;
    for v in values {
        if v <= 0.0 {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

/// Harmonic mean of strictly positive values; `None` when empty or any value
/// is non-positive. Appropriate for rates (e.g. IPC across equal-work runs).
///
/// # Examples
///
/// ```
/// let h = rcsim_stats::harmonic_mean([1.0, 3.0]).unwrap();
/// assert!((h - 1.5).abs() < 1e-12);
/// ```
pub fn harmonic_mean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut recip_sum = 0.0;
    let mut n = 0u64;
    for v in values {
        if v <= 0.0 {
            return None;
        }
        recip_sum += 1.0 / v;
        n += 1;
    }
    (n > 0).then(|| n as f64 / recip_sum)
}

/// Weighted arithmetic mean of `(value, weight)` pairs; `None` when the
/// total weight is zero.
///
/// # Examples
///
/// ```
/// let m = rcsim_stats::weighted_mean([(10.0, 1.0), (20.0, 3.0)]).unwrap();
/// assert!((m - 17.5).abs() < 1e-12);
/// ```
pub fn weighted_mean<I: IntoIterator<Item = (f64, f64)>>(pairs: I) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for (v, w) in pairs {
        num += v * w;
        den += w;
    }
    (den != 0.0).then(|| num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_basic() {
        assert_eq!(geometric_mean([]), None);
        assert_eq!(geometric_mean([1.0, -1.0]), None);
        assert!((geometric_mean([2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_basic() {
        assert_eq!(harmonic_mean([]), None);
        assert_eq!(harmonic_mean([0.0]), None);
        assert!((harmonic_mean([2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_basic() {
        assert_eq!(weighted_mean([]), None);
        assert_eq!(weighted_mean([(5.0, 0.0)]), None);
        assert!((weighted_mean([(1.0, 1.0), (2.0, 1.0)]).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn means_ordering_amgm() {
        // harmonic <= geometric <= arithmetic for positive values
        let vals = [1.0, 2.0, 3.0, 10.0];
        let h = harmonic_mean(vals).unwrap();
        let g = geometric_mean(vals).unwrap();
        let a = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(h <= g && g <= a);
    }
}
