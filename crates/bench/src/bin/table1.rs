//! Table 1 — percentage of messages traversing the network, by type
//! (64-core chip, average over all benchmarks, baseline network).

use rcsim_bench::{
    bench_row, experiment_apps, run_points, save_bench_summary, save_json, BenchSummary, PointSpec,
};
use rcsim_core::MechanismConfig;
use std::collections::BTreeMap;

/// (class label, paper's reported share of all messages).
const PAPER: &[(&str, f64)] = &[
    ("Requests (total)", 47.0),
    ("L2_Reply", 22.6),
    ("L1_DATA_ACK", 23.0),
    ("L2_WB_ACK", 4.7),
    ("L1_INV_ACK", 1.1),
    ("MEMORY", 0.9),
    ("L1_TO_L1", 0.7),
];

const REQUEST_CLASSES: &[&str] = &[
    "Request",
    "FwdRequest",
    "Invalidation",
    "WbData",
    "MemRequest",
    "MemWbData",
];

fn main() {
    println!("Table 1 — message mix (64 cores, baseline, avg over apps)\n");
    let specs: Vec<PointSpec> = experiment_apps()
        .iter()
        .map(|app| PointSpec::new(64, MechanismConfig::baseline(), app, 1))
        .collect();
    let runs = run_points(&specs);
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for r in &runs {
        for (k, v) in &r.messages {
            *totals.entry(k.clone()).or_insert(0) += v;
        }
    }
    let all: u64 = totals.values().sum();
    let share = |label: &str| -> f64 {
        if label == "Requests (total)" {
            REQUEST_CLASSES
                .iter()
                .filter_map(|c| totals.get(*c))
                .sum::<u64>() as f64
                * 100.0
                / all as f64
        } else {
            totals.get(label).copied().unwrap_or(0) as f64 * 100.0 / all as f64
        }
    };

    println!("{:<20} {:>10} {:>10}", "message type", "paper", "measured");
    for (label, paper) in PAPER {
        println!("{:<20} {:>9.1}% {:>9.1}%", label, paper, share(label));
    }
    let replies: f64 = PAPER[1..].iter().map(|(l, _)| share(l)).sum();
    println!("{:<20} {:>9.1}% {:>9.1}%", "Replies (total)", 53.0, replies);
    println!(
        "\n({} messages total across {} apps)",
        all,
        experiment_apps().len()
    );
    save_json("table1", &totals);

    let mut summary = BenchSummary::new("table1");
    let mut row = bench_row("Baseline", 64, &runs);
    for (label, _) in PAPER {
        row.extra.insert(format!("share.{label}"), share(label));
    }
    row.extra.insert("share.Replies (total)".into(), replies);
    summary.push(row);
    save_bench_summary(&mut summary);
}
