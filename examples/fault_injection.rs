//! Fault injection and health reporting (the README walkthrough).
//!
//! Three runs of the same 16-core chip:
//!
//! 1. fault-free — the default; `FaultConfig::none()` perturbs nothing;
//! 2. a lossy fabric — 1 in 1 000 link traversals eats a packet, replies
//!    that lose their circuit limp home over the ordinary pipeline
//!    (`fault_degraded`) and dropped packets are retransmitted end-to-end;
//! 3. a wedged fabric — total credit loss deadlocks the mesh, and the
//!    progress watchdog turns the hang into `SimError::Stalled` with a
//!    diagnostic `HealthReport`.
//!
//! Run with: `cargo run --release --example fault_injection [drop_rate]`
//! (`drop_rate` defaults to 0.001; crank it up to watch `fault_degraded`
//! and retransmission counts climb).

use reactive_circuits::prelude::*;

fn main() {
    let drop_rate: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("drop_rate must be a number in [0, 1]"))
        .unwrap_or(0.001);
    let base = || SimConfig::quick(16, MechanismConfig::complete_noack(), "fft");

    let clean = run_sim(&base()).expect("fault-free run");
    println!(
        "fault-free : {} instructions, healthy: {}, degraded replies: {:.2}%",
        clean.instructions,
        clean.health.healthy(),
        100.0 * clean.outcomes["fault_degraded"],
    );

    let mut lossy = base();
    lossy.faults = FaultConfig {
        link_drop_rate: drop_rate,
        seed: 42,
        ..FaultConfig::none()
    };
    match run_sim(&lossy) {
        Ok(r) => println!(
            "lossy links: {} instructions, degraded replies: {:.2}%, \
             retransmissions: {}, abandoned: {}, healthy: {}",
            r.instructions,
            100.0 * r.outcomes["fault_degraded"],
            r.health.faults.retransmissions,
            r.health.faults.packets_abandoned,
            r.health.healthy(),
        ),
        Err(e) => eprintln!("lossy links: {e}"),
    }

    let mut wedged = base();
    wedged.faults = FaultConfig {
        credit_loss_rate: 1.0, // every credit vanishes: guaranteed deadlock
        ..FaultConfig::none()
    };
    wedged.watchdog = WatchdogConfig {
        stall_window: 500,
        ..WatchdogConfig::default()
    };
    match run_sim(&wedged) {
        Ok(_) => eprintln!("wedged fabric: unexpectedly completed"),
        Err(SimError::Stalled { report }) => {
            println!("wedged fabric: watchdog caught the deadlock —");
            print!("{report}");
        }
        Err(e) => eprintln!("wedged fabric: {e}"),
    }
}
