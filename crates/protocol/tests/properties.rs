//! Property-based tests of the protocol substrates: the cache array
//! against a reference model, and PLRU sanity under random touch streams.

use proptest::prelude::*;
use rcsim_protocol::{CacheArray, CacheConfig, TreePlru};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum ArrayOp {
    Insert(u64, u32),
    Get(u64),
    Remove(u64),
}

fn array_ops() -> impl Strategy<Value = Vec<ArrayOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64, any::<u32>()).prop_map(|(b, v)| ArrayOp::Insert(b, v)),
            (0u64..64).prop_map(ArrayOp::Get),
            (0u64..64).prop_map(ArrayOp::Remove),
        ],
        0..300,
    )
}

proptest! {
    /// The cache array agrees with a map-based reference model on
    /// everything it holds (values never corrupt; evictions only remove
    /// same-set blocks; len always matches).
    #[test]
    fn array_matches_reference(ops in array_ops(), shift in 0u32..5) {
        let cfg = CacheConfig { sets: 4, ways: 2, index_shift: shift };
        let mut array: CacheArray<u32> = CacheArray::new(cfg);
        let mut model: HashMap<u64, u32> = HashMap::new();
        let set_of = |b: u64| (b >> shift) as usize & 3;
        for op in ops {
            match op {
                ArrayOp::Insert(b, v) => {
                    if model.contains_key(&b) {
                        continue; // the array forbids double insert
                    }
                    if let Some((eb, ev)) = array.insert(b, v) {
                        prop_assert_eq!(set_of(eb), set_of(b), "evicted from another set");
                        prop_assert_eq!(model.remove(&eb), Some(ev));
                    }
                    model.insert(b, v);
                }
                ArrayOp::Get(b) => {
                    prop_assert_eq!(array.get(b).copied(), model.get(&b).copied());
                }
                ArrayOp::Remove(b) => {
                    prop_assert_eq!(array.remove(b), model.remove(&b));
                }
            }
            prop_assert_eq!(array.len(), model.len());
        }
        // Full-content audit, including address reconstruction with the
        // index shift.
        let mut found: Vec<(u64, u32)> = array.iter().map(|(b, v)| (b, *v)).collect();
        found.sort();
        let mut expect: Vec<(u64, u32)> = model.into_iter().collect();
        expect.sort();
        prop_assert_eq!(found, expect);
    }

    /// The PLRU victim is never the most recently touched way.
    #[test]
    fn plru_victim_not_mru(ways_pow in 1u32..5, touches in prop::collection::vec(0usize..16, 1..200)) {
        let ways = 1usize << ways_pow;
        let mut plru = TreePlru::new(ways);
        for t in touches {
            let w = t % ways;
            plru.touch(w);
            if ways > 1 {
                prop_assert_ne!(plru.victim(), w);
            }
        }
    }

    /// Touching every way exactly once makes the first-touched way (or at
    /// least not the last) the victim.
    #[test]
    fn plru_scan_order(ways_pow in 1u32..5) {
        let ways = 1usize << ways_pow;
        let mut plru = TreePlru::new(ways);
        for w in 0..ways {
            plru.touch(w);
        }
        prop_assert_eq!(plru.victim(), 0);
    }
}
