//! Figure 9 — system speedup per configuration vs the baseline, with
//! standard error across applications.

use rcsim_bench::{
    bench_row, cores_list, experiment_apps, run_point, save_bench_summary, save_json, BenchSummary,
};
use rcsim_core::MechanismConfig;
use rcsim_stats::Accumulator;

fn main() {
    println!("Figure 9 — system speedup over the baseline\n");
    println!("Paper landmarks: gains are small (the network is lightly loaded)");
    println!("but consistent; NoAck versions beat their ack-ful counterparts;");
    println!("SlackDelay_1 is best (+4.4% @16, +6.0% @64); Complete_NoAck gets");
    println!("+3.8% / +4.8%; everything sits close to Ideal.\n");

    let mut raw = Vec::new();
    let mut summary = BenchSummary::new("fig9");
    for cores in cores_list() {
        println!("== {cores} cores ==");
        println!("{:<22} {:>10} {:>9}", "configuration", "speedup", "stderr");
        // One baseline per (app, seed): comparisons stay seed-paired.
        let points: Vec<(String, u64)> = experiment_apps()
            .iter()
            .flat_map(|app| {
                rcsim_bench::seeds()
                    .into_iter()
                    .map(move |s| (app.clone(), s))
            })
            .collect();
        let baselines: Vec<_> = points
            .iter()
            .map(|(app, s)| run_point(cores, MechanismConfig::baseline(), app, *s))
            .collect();
        for mechanism in MechanismConfig::key_configs() {
            if mechanism == MechanismConfig::baseline() {
                let mut row = bench_row("Baseline", cores, &baselines);
                row.extra.insert("speedup".into(), 1.0);
                summary.push(row);
                continue;
            }
            let mut acc = Accumulator::new();
            let mut runs = Vec::new();
            for ((app, s), base) in points.iter().zip(&baselines) {
                let r = run_point(cores, mechanism, app, *s);
                acc.add(r.speedup_over(base));
                runs.push(r);
            }
            let mut row = bench_row(&mechanism.label(), cores, &runs);
            row.extra.insert("speedup".into(), acc.mean());
            row.extra.insert("stderr".into(), acc.std_err());
            summary.push(row);
            println!(
                "{:<22} {:>10.3} {:>9.3}  {}",
                mechanism.label(),
                acc.mean(),
                acc.std_err(),
                rcsim_bench::bar(acc.mean() - 1.0, 0.15, 30),
            );
            raw.push((cores, mechanism.label(), acc.mean(), acc.std_err()));
        }
        println!();
    }
    save_json("fig9", &raw);
    save_bench_summary(&summary);
}
