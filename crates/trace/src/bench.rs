//! Machine-readable benchmark output: the `BENCH_<name>.json` summary
//! every bench bin writes, and the validator the CI smoke step runs
//! against it.
//!
//! The schema is deliberately tiny and flat so downstream tooling (CI
//! diffing, plotting scripts) never needs to understand simulator
//! internals: one row per measured configuration with the three headline
//! numbers the paper reports everywhere — average packet latency, tail
//! latency, and how often traffic rode a circuit — plus a free-form
//! `extra` map for bench-specific values.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version stamped into every summary; bump when a field changes meaning.
///
/// v2: sweep-execution telemetry (`wall_ms`, `busy_ms`, `jobs`,
/// `cached_points`) joined the top-level document.
///
/// v3: rows carry `p999_latency` (99.9th-percentile network latency) for
/// SLO-tail tracking in the overload benches.
///
/// v4: rows carry `topology` (the interconnect label: `mesh`, `torus`,
/// `cmesh-<c>`, `ring`) so topology sweeps stay diffable per shape.
///
/// v5: the checkpoint-cost sweep (`BENCH_checkpoint.json`) joins the
/// suite; its rows carry snapshot cost (`snapshot_ms`,
/// `snapshot_bytes`), resume cost (`resume_ms`) and the
/// checkpointed-run wall overhead per interval (`overhead_frac_*`) in
/// `extra`.
pub const BENCH_SCHEMA_VERSION: u32 = 5;

/// One measured configuration (one workload × mechanism × core-count
/// point) inside a bench summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRow {
    /// Human label for the point, e.g. `"canneal/complete"`.
    pub label: String,
    /// Core count the point ran with.
    pub cores: usize,
    /// Interconnect topology label (`mesh` unless the bench swept
    /// topologies; defaulted for summaries written before schema v4).
    #[serde(default = "default_topology")]
    pub topology: String,
    /// Mean network latency over reply messages, in cycles.
    pub avg_latency: f64,
    /// 99th-percentile network latency, in cycles.
    pub p99_latency: f64,
    /// 99.9th-percentile network latency, in cycles (0 for summaries
    /// written before schema v3).
    #[serde(default)]
    pub p999_latency: f64,
    /// Fraction of circuit-eligible replies that rode a complete circuit,
    /// in `[0, 1]`.
    pub circuit_hit_rate: f64,
    /// Bench-specific extra values (speedups, energy, hop counts, ...).
    #[serde(default)]
    pub extra: BTreeMap<String, f64>,
}

fn default_topology() -> String {
    "mesh".to_owned()
}

/// The document written to `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Bench bin name (`fig6`, `table5`, ...).
    pub bench: String,
    /// Schema version, [`BENCH_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Wall-clock milliseconds the bench's simulation sweeps took
    /// (0 for analytic benches that run no simulation).
    #[serde(default)]
    pub wall_ms: f64,
    /// Sum of per-point simulation times in milliseconds; `busy_ms /
    /// wall_ms` approximates the achieved parallel speedup.
    #[serde(default)]
    pub busy_ms: f64,
    /// Sweep worker threads used (`RC_JOBS`; 0 when no sweep ran).
    #[serde(default)]
    pub jobs: usize,
    /// Points served from the on-disk result cache instead of re-running.
    #[serde(default)]
    pub cached_points: usize,
    /// One row per measured configuration.
    pub rows: Vec<BenchRow>,
}

impl BenchSummary {
    /// An empty summary for bench `name` at the current schema version.
    pub fn new(name: &str) -> Self {
        Self {
            bench: name.to_owned(),
            schema_version: BENCH_SCHEMA_VERSION,
            wall_ms: 0.0,
            busy_ms: 0.0,
            jobs: 0,
            cached_points: 0,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn push(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    /// Checks the summary against the schema's semantic constraints and
    /// returns every violation found (empty means valid). The JSON-level
    /// shape is already guaranteed by deserialization; this catches the
    /// constraints a type system can't: finite latencies, a hit rate
    /// inside `[0, 1]`, non-empty labels, a known schema version.
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        if self.bench.is_empty() {
            errors.push("bench name is empty".to_owned());
        }
        if self.schema_version != BENCH_SCHEMA_VERSION {
            errors.push(format!(
                "schema_version {} != supported {}",
                self.schema_version, BENCH_SCHEMA_VERSION
            ));
        }
        if self.rows.is_empty() {
            errors.push("summary has no rows".to_owned());
        }
        for (what, v) in [("wall_ms", self.wall_ms), ("busy_ms", self.busy_ms)] {
            if !v.is_finite() || v < 0.0 {
                errors.push(format!("{what} = {v} is invalid"));
            }
        }
        for (i, row) in self.rows.iter().enumerate() {
            if row.label.is_empty() {
                errors.push(format!("row {i}: empty label"));
            }
            if row.cores == 0 {
                errors.push(format!("row {i} ({}): cores is 0", row.label));
            }
            if row.topology.is_empty() {
                errors.push(format!("row {i} ({}): empty topology", row.label));
            }
            for (what, v) in [
                ("avg_latency", row.avg_latency),
                ("p99_latency", row.p99_latency),
                ("p999_latency", row.p999_latency),
            ] {
                if !v.is_finite() || v < 0.0 {
                    errors.push(format!("row {i} ({}): {what} = {v} is invalid", row.label));
                }
            }
            if !(0.0..=1.0).contains(&row.circuit_hit_rate) {
                errors.push(format!(
                    "row {i} ({}): circuit_hit_rate = {} outside [0, 1]",
                    row.label, row.circuit_hit_rate
                ));
            }
            for (k, v) in &row.extra {
                if !v.is_finite() {
                    errors.push(format!("row {i} ({}): extra.{k} is not finite", row.label));
                }
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str) -> BenchRow {
        BenchRow {
            label: label.to_owned(),
            cores: 16,
            topology: "mesh".to_owned(),
            avg_latency: 31.5,
            p99_latency: 88.0,
            p999_latency: 120.0,
            circuit_hit_rate: 0.42,
            extra: BTreeMap::new(),
        }
    }

    #[test]
    fn valid_summary_round_trips() {
        let mut s = BenchSummary::new("fig6");
        s.push(row("canneal/complete"));
        assert!(s.validate().is_empty(), "{:?}", s.validate());
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: BenchSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn violations_are_reported() {
        let mut s = BenchSummary::new("fig6");
        let mut bad = row("");
        bad.circuit_hit_rate = 1.5;
        bad.avg_latency = f64::NAN;
        s.push(bad);
        let errors = s.validate();
        assert!(errors.iter().any(|e| e.contains("empty label")));
        assert!(errors.iter().any(|e| e.contains("circuit_hit_rate")));
        assert!(errors.iter().any(|e| e.contains("avg_latency")));
    }

    #[test]
    fn empty_and_wrong_version_rejected() {
        let mut s = BenchSummary::new("x");
        assert!(s.validate().iter().any(|e| e.contains("no rows")));
        s.push(row("a"));
        s.schema_version = 99;
        assert!(s.validate().iter().any(|e| e.contains("schema_version")));
    }

    #[test]
    fn extra_defaults_when_absent_from_json() {
        let json = r#"{"bench":"t","schema_version":5,"rows":[
            {"label":"a","cores":4,"avg_latency":1.0,"p99_latency":2.0,"circuit_hit_rate":0.5}
        ]}"#;
        let s: BenchSummary = serde_json::from_str(json).unwrap();
        assert!(s.rows[0].extra.is_empty());
        assert_eq!(s.rows[0].topology, "mesh");
        assert_eq!(s.rows[0].p999_latency, 0.0);
        assert_eq!(
            (s.wall_ms, s.busy_ms, s.jobs, s.cached_points),
            (0.0, 0.0, 0, 0)
        );
        assert!(s.validate().is_empty());
    }

    #[test]
    fn sweep_telemetry_is_validated() {
        let mut s = BenchSummary::new("fig6");
        s.push(row("a"));
        s.wall_ms = f64::NAN;
        s.busy_ms = -1.0;
        let errors = s.validate();
        assert!(errors.iter().any(|e| e.contains("wall_ms")));
        assert!(errors.iter().any(|e| e.contains("busy_ms")));
        s.wall_ms = 120.5;
        s.busy_ms = 400.0;
        s.jobs = 4;
        s.cached_points = 3;
        assert!(s.validate().is_empty());
        let json = serde_json::to_string(&s).unwrap();
        let back: BenchSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
