//! The stub's self-describing value tree — a minimal serde data model that
//! doubles as `serde_json::Value`.

use std::fmt;

/// Error produced when a content tree does not match the requested shape.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

/// A self-describing value: the serde data model of the offline stub, and
/// the `serde_json::Value` of the patched workspace.
///
/// Maps preserve insertion order (like serde_json's `preserve_order`
/// feature) so structs round-trip field-for-field.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Content {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always `< 0` when produced by the parser).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }

    /// The value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(n) => Some(*n),
            Content::I64(n) => u64::try_from(*n).ok(),
            Content::F64(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(n) => Some(*n),
            Content::U64(n) => i64::try_from(*n).ok(),
            Content::F64(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Some(*x as i64),
            _ => None,
        }
    }

    /// The value as a float (integers convert; `"inf"`-style strings
    /// written by the serializer for non-finite floats convert back).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(x) => Some(*x),
            Content::U64(n) => Some(*n as f64),
            Content::I64(n) => Some(*n as f64),
            Content::Str(s) => match s.as_str() {
                "inf" | "Infinity" => Some(f64::INFINITY),
                "-inf" | "-Infinity" => Some(f64::NEG_INFINITY),
                "NaN" | "nan" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// The object's entries, in insertion order.
    pub fn as_object(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// `true` for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Member lookup on objects (`None` for other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// First value for `key` in an object's entry slice (derive-macro helper).
pub fn find<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// "missing field" error (derive-macro helper).
pub fn missing_field(ty: &str, field: &str) -> Error {
    Error::msg(format!("missing field `{field}` of `{ty}`"))
}

/// "expected map" error (derive-macro helper).
pub fn expected_map(ty: &str, got: &Content) -> Error {
    Error::msg(format!("expected object for `{ty}`, got {}", got.kind()))
}
