//! Synthetic network-level traffic patterns, used by the NoC's own tests
//! and micro-benchmarks (the full-system experiments use the coherence
//! protocol in `rcsim-protocol` instead).

use crate::flit::PacketSpec;
use crate::network::Network;
use rand::Rng;
use rcsim_core::{MessageClass, NodeId};
use serde::{Deserialize, Serialize};

/// Spatial traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Destination drawn uniformly over all other nodes.
    UniformRandom,
    /// Node `(x, y)` sends to `(y, x)`.
    Transpose,
    /// A fraction of traffic targets one hot node, the rest is uniform.
    Hotspot {
        /// The hot node.
        target: NodeId,
        /// Percentage (0–100) of packets aimed at it.
        percent: u8,
    },
}

/// A Bernoulli packet generator over a pattern.
///
/// Each cycle, every node independently starts a new request packet with
/// probability `injection_rate` (packets/node/cycle). Useful to reproduce
/// the light loads the paper reports (<4 flits/node/100 cycles).
#[derive(Debug, Clone)]
pub struct Generator {
    /// Spatial pattern.
    pub pattern: Pattern,
    /// Packets per node per cycle.
    pub injection_rate: f64,
    /// Message class injected (class fixes size and VN).
    pub class: MessageClass,
}

impl Generator {
    /// A uniform-random generator of single-flit requests.
    pub fn uniform(injection_rate: f64) -> Self {
        Self {
            pattern: Pattern::UniformRandom,
            injection_rate,
            class: MessageClass::L1Request,
        }
    }

    /// Chooses a destination for `src` under the pattern.
    ///
    /// On a degenerate mesh with fewer than two nodes there is no valid
    /// destination; `src` is returned and [`Generator::step`] skips the
    /// self-addressed packet.
    pub fn destination<R: Rng>(&self, net: &Network, src: NodeId, rng: &mut R) -> NodeId {
        let topology = net.config().topology;
        let n = topology.nodes() as u16;
        if n < 2 {
            return src;
        }
        match self.pattern {
            Pattern::UniformRandom => loop {
                let d = NodeId(rng.gen_range(0..n));
                if d != src {
                    return d;
                }
            },
            Pattern::Transpose => {
                // Transpose acts on the router grid; a concentrated tile
                // keeps its local slot at the transposed router.
                let (w, h) = topology.dims();
                let c = topology.coord(topology.router_of(src));
                let max = (w - 1).min(h - 1);
                let t_router = topology.router_at(rcsim_core::geometry::Coord {
                    x: c.y.min(max),
                    y: c.x.min(max),
                });
                let t = topology.tile_of(t_router, topology.local_slot(src));
                if t == src {
                    NodeId((src.0 + 1) % n)
                } else {
                    t
                }
            }
            Pattern::Hotspot { target, percent } => {
                if rng.gen_range(0..100u8) < percent && target != src {
                    target
                } else {
                    loop {
                        let d = NodeId(rng.gen_range(0..n));
                        if d != src {
                            return d;
                        }
                    }
                }
            }
        }
    }

    /// Runs one injection step: every node flips its Bernoulli coin.
    /// Out-of-range injection rates are clamped to `[0, 1]` rather than
    /// panicking — a sweep script overshooting saturation degrades to
    /// every-cycle injection.
    pub fn step<R: Rng>(&self, net: &mut Network, rng: &mut R, next_block: &mut u64) {
        let nodes = net.config().topology.nodes() as u16;
        let rate = if self.injection_rate.is_finite() {
            self.injection_rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        for s in 0..nodes {
            if rng.gen_bool(rate) {
                let src = NodeId(s);
                let dst = self.destination(net, src, rng);
                if src == dst {
                    continue;
                }
                *next_block += 64;
                net.inject(PacketSpec::new(src, dst, self.class).with_block(*next_block));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rcsim_core::{MechanismConfig, Mesh};

    fn net() -> Network {
        Network::new(NocConfig::paper_baseline(
            Mesh::new(4, 4).unwrap(),
            MechanismConfig::baseline(),
        ))
        .unwrap()
    }

    #[test]
    fn uniform_never_self() {
        let n = net();
        let g = Generator::uniform(0.1);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for s in 0..16u16 {
            for _ in 0..50 {
                assert_ne!(g.destination(&n, NodeId(s), &mut rng), NodeId(s));
            }
        }
    }

    #[test]
    fn transpose_is_involutive_inside_square() {
        let n = net();
        let g = Generator {
            pattern: Pattern::Transpose,
            injection_rate: 0.1,
            class: MessageClass::L1Request,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // (1,2) -> (2,1) -> (1,2)
        let a = NodeId(9); // (1,2) in 4x4
        let b = g.destination(&n, a, &mut rng);
        assert_eq!(g.destination(&n, b, &mut rng), a);
    }

    #[test]
    fn hotspot_targets_hot_node() {
        let n = net();
        let g = Generator {
            pattern: Pattern::Hotspot {
                target: NodeId(5),
                percent: 100,
            },
            injection_rate: 0.1,
            class: MessageClass::L1Request,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for s in 0..16u16 {
            if s != 5 {
                assert_eq!(g.destination(&n, NodeId(s), &mut rng), NodeId(5));
            }
        }
    }

    #[test]
    fn generated_traffic_drains() {
        let mut n = net();
        let g = Generator::uniform(0.05);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut block = 0;
        for _ in 0..200 {
            g.step(&mut n, &mut rng, &mut block);
            n.tick();
        }
        for _ in 0..2000 {
            n.tick();
        }
        let s = n.stats();
        assert!(s.total_injected() > 0);
        assert_eq!(s.total_injected(), s.total_delivered());
        assert!(n.is_quiescent());
    }
}
