//! Event-based network energy model (Figure 8).

use crate::area::RouterArea;
use rcsim_core::MechanismConfig;
use rcsim_noc::NocStats;
use serde::{Deserialize, Serialize};

/// Per-event and static energy coefficients, loosely calibrated to 32 nm
/// DSENT numbers for a 128-bit 5-port router at 2 GHz. Units are
/// picojoules (dynamic) and picojoules/cycle (static); only *relative*
/// energies matter for the normalized Figure 8 results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per flit written into a VC buffer.
    pub buffer_write_pj: f64,
    /// Energy per flit read from a VC buffer.
    pub buffer_read_pj: f64,
    /// Energy per crossbar traversal.
    pub xbar_pj: f64,
    /// Energy per flit-hop on an inter-router link.
    pub link_pj: f64,
    /// Energy per allocator grant operation.
    pub alloc_pj: f64,
    /// Energy per credit (incl. undo piggybacks).
    pub credit_pj: f64,
    /// Energy per circuit-table write or lookup.
    pub table_pj: f64,
    /// Router static power, per normalized area unit per cycle.
    pub router_static_pj_per_area: f64,
    /// Link static power per link per cycle.
    pub link_static_pj: f64,
}

impl EnergyModel {
    /// The 32 nm / 2 GHz defaults. Static power dominates at the light
    /// loads the paper reports (<4 flits/node/100 cycles), which is what
    /// makes the buffer removal of complete circuits pay off.
    pub fn default_32nm() -> Self {
        Self {
            buffer_write_pj: 1.3,
            buffer_read_pj: 1.1,
            xbar_pj: 1.9,
            link_pj: 2.0,
            alloc_pj: 0.25,
            credit_pj: 0.08,
            table_pj: 0.12,
            router_static_pj_per_area: 0.0016,
            link_static_pj: 4.5,
        }
    }

    /// Computes the network energy of one run from its activity counters.
    ///
    /// `cores` fixes the router count and link count (a W×H mesh has
    /// `2·(2·W·H − W − H)` unidirectional links).
    pub fn network_energy(
        &self,
        stats: &NocStats,
        mechanism: &MechanismConfig,
        width: usize,
        height: usize,
    ) -> EnergyBreakdown {
        let routers = (width * height) as f64;
        let links = 2.0 * (2 * width * height - width - height) as f64;
        let a = &stats.activity;
        let router_dynamic = a.buffer_writes as f64 * self.buffer_write_pj
            + a.buffer_reads as f64 * self.buffer_read_pj
            + a.xbar_traversals as f64 * self.xbar_pj
            + (a.vc_allocs + a.sw_allocs) as f64 * self.alloc_pj
            + a.credits as f64 * self.credit_pj
            + (a.circuit_writes + a.circuit_lookups) as f64 * self.table_pj;
        let link_dynamic = a.link_flits as f64 * self.link_pj;
        let area = RouterArea::for_mechanism(mechanism, width * height).total();
        let router_static = stats.cycles as f64 * routers * area * self.router_static_pj_per_area;
        let link_static = stats.cycles as f64 * links * self.link_static_pj;
        EnergyBreakdown {
            router_dynamic_pj: router_dynamic,
            router_static_pj: router_static,
            link_dynamic_pj: link_dynamic,
            link_static_pj: link_static,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::default_32nm()
    }
}

/// Network energy split into the four Figure 8 components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Dynamic energy in routers.
    pub router_dynamic_pj: f64,
    /// Static (leakage + clock) energy in routers.
    pub router_static_pj: f64,
    /// Dynamic energy in links.
    pub link_dynamic_pj: f64,
    /// Static energy in links.
    pub link_static_pj: f64,
}

impl EnergyBreakdown {
    /// Total network energy.
    pub fn total_pj(&self) -> f64 {
        self.router_dynamic_pj + self.router_static_pj + self.link_dynamic_pj + self.link_static_pj
    }

    /// Fraction of the total that is static.
    pub fn static_share(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            (self.router_static_pj + self.link_static_pj) / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
    use rcsim_noc::{Network, NocConfig, PacketSpec};

    fn run_light_load(mechanism: MechanismConfig) -> NocStats {
        let mesh = Mesh::new(4, 4).unwrap();
        let mut net = Network::new(NocConfig::paper_baseline(mesh, mechanism)).unwrap();
        for i in 0..40u64 {
            let src = NodeId((i % 16) as u16);
            let dst = NodeId(((i * 7 + 3) % 16) as u16);
            if src != dst {
                net.inject(PacketSpec::new(src, dst, MessageClass::L1Request).with_block(i * 64));
            }
            for _ in 0..25 {
                net.tick();
            }
        }
        for _ in 0..500 {
            net.tick();
        }
        net.stats()
    }

    #[test]
    fn static_dominates_at_light_load() {
        let stats = run_light_load(MechanismConfig::baseline());
        let e =
            EnergyModel::default_32nm().network_energy(&stats, &MechanismConfig::baseline(), 4, 4);
        assert!(
            e.static_share() > 0.5,
            "static share {} should dominate at light load",
            e.static_share()
        );
        assert!(e.router_dynamic_pj > 0.0 && e.link_dynamic_pj > 0.0);
    }

    #[test]
    fn smaller_router_means_less_static_energy() {
        let stats = run_light_load(MechanismConfig::baseline());
        let m = EnergyModel::default_32nm();
        let base = m.network_energy(&stats, &MechanismConfig::baseline(), 4, 4);
        let complete = m.network_energy(&stats, &MechanismConfig::complete(), 4, 4);
        assert!(complete.router_static_pj < base.router_static_pj);
    }

    #[test]
    fn zero_stats_zero_dynamic() {
        let e = EnergyModel::default_32nm().network_energy(
            &NocStats::default(),
            &MechanismConfig::baseline(),
            4,
            4,
        );
        assert_eq!(e.router_dynamic_pj, 0.0);
        assert_eq!(e.link_dynamic_pj, 0.0);
        assert_eq!(e.total_pj(), 0.0);
        assert_eq!(e.static_share(), 0.0);
    }

    #[test]
    fn energy_scales_with_cycles() {
        let mut s = NocStats {
            cycles: 1000,
            ..Default::default()
        };
        let m = EnergyModel::default_32nm();
        let e1 = m.network_energy(&s, &MechanismConfig::baseline(), 4, 4);
        s.cycles = 2000;
        let e2 = m.network_energy(&s, &MechanismConfig::baseline(), 4, 4);
        assert!((e2.router_static_pj / e1.router_static_pj - 2.0).abs() < 1e-9);
    }
}
