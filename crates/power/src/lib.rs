//! First-order router area and network energy models.
//!
//! The paper evaluates area and energy with DSENT at 32 nm / 2 GHz. This
//! crate provides an analytical stand-in: router area is a sum of
//! component terms (input buffers, crossbar, allocators, circuit tables,
//! pipeline overhead) expressed in normalized *area units* proportional to
//! bit counts, with coefficients chosen so the **baseline component
//! shares** match published DSENT breakdowns for a 5-port, 128-bit,
//! 4-VC router (buffers ≈ 40% of router area, crossbar ≈ 28%, allocators
//! ≈ 12%, pipeline/other ≈ 20%). Energy is event-based: per-flit buffer
//! read/write, crossbar traversal, link traversal and allocator energies
//! scale with bit width, while static power scales with area.
//!
//! The paper's Table 6 (area savings) and Figure 8 (normalized network
//! energy) are regenerated from these models plus the activity counters
//! recorded by [`rcsim_noc::NocStats`].
//!
//! # Examples
//!
//! ```
//! use rcsim_core::MechanismConfig;
//! use rcsim_power::RouterArea;
//!
//! let base = RouterArea::for_mechanism(&MechanismConfig::baseline(), 64);
//! let complete = RouterArea::for_mechanism(&MechanismConfig::complete(), 64);
//! // Complete circuits remove one VC buffer per port: smaller router.
//! assert!(complete.total() < base.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod energy;

pub use area::{area_savings, RouterArea};
pub use energy::{EnergyBreakdown, EnergyModel};
