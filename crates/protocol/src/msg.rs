//! Protocol messages and the network abstraction.

use rcsim_core::circuit::CircuitKey;
use rcsim_core::{Cycle, MessageClass, NodeId};
use serde::{Deserialize, Serialize};

/// What an L1 wants from the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqKind {
    /// Read permission (shared).
    GetS,
    /// Write permission (exclusive).
    GetX,
}

/// One coherence message. The [`MessageClass`] fixes the virtual network,
/// size and circuit eligibility; the remaining fields carry the protocol
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Msg {
    /// Message class (Table 3).
    pub class: MessageClass,
    /// Sender node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cache-line address (byte address >> 6).
    pub block: u64,
    /// Request kind, for `L1Request` and `FwdRequest`.
    pub req: Option<ReqKind>,
    /// For `FwdRequest`: the node the owner must send data to.
    pub requestor: Option<NodeId>,
    /// For data replies to a `GetS` with no other sharers: grant Exclusive.
    pub exclusive: bool,
    /// Modelled line contents (a 64-bit token standing in for the 64-byte
    /// line), used by the coherence correctness checks.
    pub data: u64,
    /// `true` for messages of a data-carrying class that are actually a
    /// single-flit acknowledgement (the `MEMORY` ack of an L2 write-back).
    pub short: bool,
    /// For `L1Request`s: the requestor has a write-back for this very
    /// block in flight (the request overtook it on the request VN), so
    /// the home must wait for the data instead of serving a stale line.
    pub wb_race: bool,
}

impl Msg {
    /// A message of `class` from `src` to `dst` about `block`.
    pub fn new(class: MessageClass, src: NodeId, dst: NodeId, block: u64) -> Self {
        Self {
            class,
            src,
            dst,
            block,
            req: None,
            requestor: None,
            exclusive: false,
            data: 0,
            short: false,
            wb_race: false,
        }
    }

    /// Marks a request that is racing the sender's own write-back.
    pub fn with_wb_race(mut self) -> Self {
        self.wb_race = true;
        self
    }

    /// Marks a data-class message as a single-flit acknowledgement.
    pub fn with_short(mut self) -> Self {
        self.short = true;
        self
    }

    /// Sets the request kind.
    pub fn with_req(mut self, req: ReqKind) -> Self {
        self.req = Some(req);
        self
    }

    /// Sets the forward target.
    pub fn with_requestor(mut self, requestor: NodeId) -> Self {
        self.requestor = Some(requestor);
        self
    }

    /// Sets the line-content token.
    pub fn with_data(mut self, data: u64) -> Self {
        self.data = data;
        self
    }

    /// Marks an exclusive data grant.
    pub fn with_exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }

    /// The circuit key a reply to this request (or this reply) uses.
    pub fn circuit_key_for(requestor: NodeId, block: u64) -> CircuitKey {
        CircuitKey { requestor, block }
    }
}

/// The network as seen by the protocol state machines.
///
/// `rcsim-system` implements this on top of the cycle-accurate NoC; the
/// protocol's own unit tests use an in-memory loopback.
pub trait Port {
    /// Current cycle.
    fn now(&self) -> Cycle;

    /// Sends a message. `turnaround` is the expected responder latency the
    /// circuit estimator should plan for (L2 hit, or memory latency).
    /// Returns `true` when the message is a reply that committed to riding
    /// its own complete circuit (the §4.6 NoAck condition).
    fn send(&mut self, msg: Msg, turnaround: u32) -> bool;

    /// Tears down an unused circuit (the L2→owner forward flow, §4.4).
    fn undo_circuit(&mut self, key: CircuitKey);

    /// Records an `L1_DATA_ACK` that was never generated (§4.6).
    fn record_eliminated_ack(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let m = Msg::new(MessageClass::L1Request, NodeId(1), NodeId(2), 0x40)
            .with_req(ReqKind::GetX)
            .with_data(9)
            .with_exclusive();
        assert_eq!(m.req, Some(ReqKind::GetX));
        assert_eq!(m.data, 9);
        assert!(m.exclusive);
        assert_eq!(m.requestor, None);
    }

    #[test]
    fn circuit_key_matches_noc_convention() {
        let k = Msg::circuit_key_for(NodeId(3), 0x80);
        assert_eq!(k.requestor, NodeId(3));
        assert_eq!(k.block, 0x80);
    }
}
