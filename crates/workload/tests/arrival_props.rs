//! Property-based round trips of the arrival-stream checkpoint: for any
//! process shape, seed and split cycle, a stream restored from its
//! snapshot must continue the exact arrival sequence of the original —
//! the RNG draw sequence *is* the process definition, so one misplaced
//! draw shows up as a shifted arrival. The snapshot itself must survive
//! serde byte-for-byte.

use proptest::prelude::*;
use rcsim_workload::{ArrivalProcess, ArrivalSnapshot, ArrivalStream};

fn process_strategy() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (0.0f64..1.0).prop_map(|rate| ArrivalProcess::Poisson { rate }),
        (0.05f64..0.9, 0.0f64..0.05, 1u64..200, 1u64..400).prop_map(
            |(rate_on, rate_off, mean_on, mean_off)| ArrivalProcess::Bursty {
                rate_on,
                rate_off,
                mean_on,
                mean_off,
            }
        ),
        (0.05f64..1.0, 2u64..5_000)
            .prop_map(|(peak_rate, period)| ArrivalProcess::Diurnal { peak_rate, period }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Snapshot at an arbitrary split cycle, restore into a fresh stream
    /// of the same configuration, and the tail of the run is identical —
    /// arrival for arrival, destination for destination.
    #[test]
    fn restored_stream_continues_the_exact_sequence(
        process in process_strategy(),
        seed in any::<u64>(),
        edge in 0usize..8,
        split in 0u64..2_000,
        tail in 1u64..2_000,
        servers in 1usize..32,
    ) {
        let mut original = ArrivalStream::new(process, seed, edge, 8);
        for t in 0..split {
            original.poll(t, servers);
        }

        let snap = original.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize snapshot");
        let decoded: ArrivalSnapshot = serde_json::from_str(&json).expect("deserialize snapshot");
        prop_assert_eq!(&decoded, &snap, "snapshot did not survive serde");
        prop_assert_eq!(
            serde_json::to_string(&decoded).expect("re-serialize"),
            json,
            "snapshot re-serialization is not byte-identical"
        );

        // The restore target deliberately starts from a *different* seed:
        // every bit of dynamic state must come from the snapshot.
        let mut restored = ArrivalStream::new(process, seed ^ 0xDEAD_BEEF, (edge + 1) % 8, 8);
        restored.restore(&decoded);
        prop_assert_eq!(restored.produced(), original.produced());

        for t in split..split + tail {
            prop_assert_eq!(
                original.poll(t, servers),
                restored.poll(t, servers),
                "arrival sequences diverged at cycle {}",
                t
            );
        }
    }
}
