//! Network configuration and the virtual-channel layout.

use rcsim_core::{MechanismConfig, Topology, Vnet};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Configuration of one network instance.
///
/// The defaults of [`NocConfig::paper_baseline`] reproduce Table 4 of the
/// paper: 2 VCs per virtual network (plus the fragmented mode's extra
/// reply VC), 5-flit buffers, 16-byte flits, 1-cycle links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Network topology (mesh, torus, concentrated mesh or ring).
    pub topology: Topology,
    /// The Reactive Circuits mechanism configuration.
    pub mechanism: MechanismConfig,
    /// Flit buffer depth per VC, in flits (5: one whole data message).
    pub buffer_depth: u32,
    /// Flit payload width in bytes (16).
    pub flit_bytes: u32,
    /// Virtual channels in the request virtual network (2).
    pub req_vcs: usize,
    /// Link traversal latency in cycles (1).
    pub link_latency: u32,
    /// Fixed ejection + responder-NI + injection overhead added to the
    /// timed-window nominal estimate, in cycles. The reservation estimator
    /// of §4.7 counts 5 cycles/hop for the request, the responder
    /// turnaround, and 2 cycles/hop for the reply; the constant pipeline
    /// cycles at both endpoints are known at design time and included here
    /// so that an undelayed request yields an exactly-met window.
    pub inject_overhead: u32,
    /// Extra reply VCs on top of the mechanism's count. Wrap topologies
    /// (torus, ring) need one so each virtual network keeps at least two
    /// allocatable VCs after the dateline split halves them into classes.
    pub extra_reply_vcs: usize,
    /// Head-of-line relief in the VC allocator: when the oldest waiting
    /// VC of the winning input port cannot be allocated (its virtual
    /// network has no free output VC), consider the port's younger
    /// waiting VCs instead of granting nothing — the oldest VC would
    /// otherwise shadow younger VCs forever and could close a
    /// request/reply credit cycle into a hard deadlock under sustained
    /// bidirectional load (the wedges pinned by `tests/echo_probe.rs`).
    /// On by default since the legacy single-candidate sweep was retired
    /// (the goldens are regenerated accordingly). Setting it to `false`
    /// restores the legacy oldest-only sweep — the reproducible wedge the
    /// wait-for-graph deadlock diagnoser is regression-tested against
    /// (see [`crate::DeadlockReport`]).
    #[serde(default = "default_true", skip_serializing_if = "is_true")]
    pub va_hol_relief: bool,
}

/// Serde default for [`NocConfig::va_hol_relief`] (on since the legacy
/// allocator was retired).
fn default_true() -> bool {
    true
}

/// `skip_serializing_if` helper: keeps default configs byte-identical to
/// serializations from before the flag existed (cache keys, goldens).
#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_true(b: &bool) -> bool {
    *b
}

impl NocConfig {
    /// The Table 4 configuration for a given topology and mechanism. On
    /// wrap topologies one extra reply VC is provisioned for the dateline
    /// classes; on the mesh the layout is exactly the paper's.
    pub fn paper_baseline(topology: impl Into<Topology>, mechanism: MechanismConfig) -> Self {
        let topology = topology.into();
        Self {
            topology,
            mechanism,
            buffer_depth: 5,
            flit_bytes: 16,
            req_vcs: 2,
            link_latency: 1,
            inject_overhead: 6,
            extra_reply_vcs: usize::from(topology.has_wrap()),
            va_hol_relief: true,
        }
    }

    /// The VC layout implied by the mechanism configuration.
    pub fn vc_layout(&self) -> VcLayout {
        VcLayout {
            req_vcs: self.req_vcs,
            reply_vcs: self.mechanism.reply_vcs() + self.extra_reply_vcs,
            circuit_vcs: self.mechanism.circuit_vcs(),
        }
    }
}

/// How the virtual channels of one physical port are split between the two
/// virtual networks and the circuit class.
///
/// VC indices are dense: request VCs first, then reply VCs; the *last*
/// `circuit_vcs` reply VCs are the circuit class (bufferless in complete
/// mode).
///
/// # Examples
///
/// ```
/// use rcsim_core::{MechanismConfig, Mesh, Vnet};
/// use rcsim_noc::NocConfig;
///
/// let cfg = NocConfig::paper_baseline(
///     Mesh::new(4, 4)?,
///     MechanismConfig::complete(),
/// );
/// let vl = cfg.vc_layout();
/// assert_eq!(vl.total(), 4);
/// assert_eq!(vl.vnet_of(0), Vnet::Request);
/// assert_eq!(vl.vnet_of(3), Vnet::Reply);
/// assert!(vl.is_circuit_vc(3));
/// assert!(!vl.is_circuit_vc(2));
/// # Ok::<(), rcsim_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcLayout {
    /// VCs in the request virtual network.
    pub req_vcs: usize,
    /// VCs in the reply virtual network (incl. circuit class).
    pub reply_vcs: usize,
    /// Trailing reply VCs dedicated to circuits.
    pub circuit_vcs: usize,
}

impl VcLayout {
    /// Total VCs per port.
    pub fn total(&self) -> usize {
        self.req_vcs + self.reply_vcs
    }

    /// Virtual network a VC index belongs to.
    ///
    /// Invariant: `vc < self.total()` — VC indices come from the layout
    /// itself, so this is debug-asserted rather than checked on the hot
    /// path. An out-of-range index classifies as `Reply` in release
    /// builds.
    pub fn vnet_of(&self, vc: usize) -> Vnet {
        debug_assert!(vc < self.total(), "vc {vc} out of range");
        if vc < self.req_vcs {
            Vnet::Request
        } else {
            Vnet::Reply
        }
    }

    /// The VC index range of a virtual network.
    pub fn vcs_of(&self, vnet: Vnet) -> Range<usize> {
        match vnet {
            Vnet::Request => 0..self.req_vcs,
            Vnet::Reply => self.req_vcs..self.total(),
        }
    }

    /// `true` when `vc` is a circuit-class VC.
    pub fn is_circuit_vc(&self, vc: usize) -> bool {
        vc >= self.total() - self.circuit_vcs && vc < self.total()
    }

    /// The global VC index of circuit VC `i`.
    ///
    /// Invariant: `i < self.circuit_vcs` — callers iterate the layout's
    /// own circuit range, so this is debug-asserted rather than checked
    /// on the hot path.
    pub fn circuit_vc(&self, i: usize) -> usize {
        debug_assert!(i < self.circuit_vcs, "circuit vc {i} out of range");
        self.total() - self.circuit_vcs + i
    }

    /// The VC index range a packet may be *allocated* in by the VC
    /// allocator: its VN's VCs minus the circuit class (circuit VCs are
    /// only ever used through reservations).
    pub fn allocatable_vcs(&self, vnet: Vnet) -> Range<usize> {
        match vnet {
            Vnet::Request => 0..self.req_vcs,
            Vnet::Reply => self.req_vcs..self.total() - self.circuit_vcs,
        }
    }

    /// The allocatable-VC subset for one dateline class on wrap
    /// topologies: class 0 (still to cross the wrap link in the current
    /// dimension) gets the first half of the VN's allocatable VCs, class 1
    /// (past the wrap, or never crossing it) the rest. Splitting by VC
    /// index breaks the channel-dependency cycle a torus/ring would
    /// otherwise close through its wraparound links.
    pub fn allocatable_class_vcs(&self, vnet: Vnet, class: u8) -> Range<usize> {
        let all = self.allocatable_vcs(vnet);
        let mid = all.start + (all.end - all.start) / 2;
        if class == 0 {
            all.start..mid
        } else {
            mid..all.end
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcsim_core::{MechanismConfig, Mesh};

    fn layout_for(mechanism: MechanismConfig) -> VcLayout {
        NocConfig::paper_baseline(Mesh::new(4, 4).unwrap(), mechanism).vc_layout()
    }

    #[test]
    fn wrap_topologies_gain_a_reply_vc_and_split_classes() {
        let torus =
            NocConfig::paper_baseline(Topology::torus(4, 4).unwrap(), MechanismConfig::complete());
        assert_eq!(torus.extra_reply_vcs, 1);
        let vl = torus.vc_layout();
        // 2 req + (2 complete + 1 extra) reply, last one the circuit VC.
        assert_eq!(vl.total(), 5);
        assert_eq!(vl.allocatable_vcs(Vnet::Reply), 2..4);
        // Each class keeps at least one allocatable VC in both VNs.
        for vnet in [Vnet::Request, Vnet::Reply] {
            let c0 = vl.allocatable_class_vcs(vnet, 0);
            let c1 = vl.allocatable_class_vcs(vnet, 1);
            assert!(!c0.is_empty() && !c1.is_empty(), "{vnet:?}: {c0:?}/{c1:?}");
            assert_eq!(c0.end, c1.start);
            assert_eq!(c0.start, vl.allocatable_vcs(vnet).start);
            assert_eq!(c1.end, vl.allocatable_vcs(vnet).end);
        }
        // Mesh keeps the paper's exact layout: no extra VC.
        let mesh = NocConfig::paper_baseline(Mesh::new(4, 4).unwrap(), MechanismConfig::complete());
        assert_eq!(mesh.extra_reply_vcs, 0);
        assert_eq!(mesh.vc_layout().total(), 4);
    }

    #[test]
    fn baseline_layout() {
        let vl = layout_for(MechanismConfig::baseline());
        assert_eq!(vl.total(), 4);
        assert_eq!(vl.circuit_vcs, 0);
        assert_eq!(vl.vcs_of(Vnet::Request), 0..2);
        assert_eq!(vl.vcs_of(Vnet::Reply), 2..4);
        assert_eq!(vl.allocatable_vcs(Vnet::Reply), 2..4);
        assert!(!vl.is_circuit_vc(3));
    }

    #[test]
    fn fragmented_layout_has_extra_vc() {
        let vl = layout_for(MechanismConfig::fragmented());
        assert_eq!(vl.total(), 5);
        assert_eq!(vl.circuit_vcs, 2);
        assert_eq!(vl.allocatable_vcs(Vnet::Reply), 2..3);
        assert!(vl.is_circuit_vc(3));
        assert!(vl.is_circuit_vc(4));
        assert_eq!(vl.circuit_vc(0), 3);
        assert_eq!(vl.circuit_vc(1), 4);
    }

    #[test]
    fn complete_layout_dedicates_one_vc() {
        let vl = layout_for(MechanismConfig::complete());
        assert_eq!(vl.total(), 4);
        assert_eq!(vl.circuit_vcs, 1);
        assert_eq!(vl.allocatable_vcs(Vnet::Reply), 2..3);
        assert!(vl.is_circuit_vc(3));
        assert_eq!(vl.circuit_vc(0), 3);
    }

    #[test]
    fn request_vcs_never_circuit_class() {
        for m in [
            MechanismConfig::baseline(),
            MechanismConfig::fragmented(),
            MechanismConfig::complete(),
            MechanismConfig::ideal(),
        ] {
            let vl = layout_for(m);
            for vc in vl.vcs_of(Vnet::Request) {
                assert!(!vl.is_circuit_vc(vc));
                assert_eq!(vl.vnet_of(vc), Vnet::Request);
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn vnet_of_out_of_range_panics() {
        layout_for(MechanismConfig::baseline()).vnet_of(9);
    }
}
