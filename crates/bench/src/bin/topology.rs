//! Topology sweep: reactive circuits across mesh, torus, concentrated
//! mesh and ring interconnects at 64–1024 cores.
//!
//! The coherence protocol's sharer bitmask caps full-chip runs at 64
//! tiles, so this sweep drives the [`Network`] directly with a
//! request/reply echo: uniform random single-flit requests whose
//! deliveries bounce back as circuit-eligible data replies. Traffic is
//! **closed-loop** — each node holds at most `RC_TOPO_WINDOW`
//! outstanding requests, like an L1's MSHR file — because that is both
//! the shape of the paper's reactive coherence traffic and the regime
//! the NoC is proven to drain under (open-loop sustained injection
//! without admission control can wedge Complete-style reservations on
//! the seed simulator, mesh included; the overload bench handles that
//! regime with its ingress layer). Each {mechanism × topology × size}
//! point reports the circuit hit rate and circuit-reply latency
//! (mean/p99) at light reactive load, plus the credit-limited
//! saturation throughput with every node injecting whenever it has a
//! free slot. Every run — light and saturated — must drain to
//! quiescence with zero abandoned packets: the deadlock-freedom check
//! for the wraparound topologies' dateline rule.
//!
//! Knobs: `RC_TOPO_CYCLES` (injection window per point, default 3000),
//! `RC_TOPO_CORES` (comma list, default `64,256,1024`),
//! `RC_TOPO_WINDOW` (outstanding requests per node, default 8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcsim_bench::{save_bench_summary, save_json, BenchRow, BenchSummary};
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{MechanismConfig, MessageClass, NodeId, Topology, TopologySpec};
use rcsim_noc::{CircuitOutcome, MessageGroup, Network, NocConfig, PacketSpec};
use std::collections::BTreeMap;

fn cycles() -> u64 {
    std::env::var("RC_TOPO_CYCLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000)
}

fn cores_list() -> Vec<u16> {
    std::env::var("RC_TOPO_CORES")
        .ok()
        .map(|s| s.split(',').filter_map(|c| c.trim().parse().ok()).collect())
        .filter(|v: &Vec<u16>| !v.is_empty())
        .unwrap_or_else(|| vec![64, 256, 1024])
}

fn window_outstanding() -> u32 {
    std::env::var("RC_TOPO_WINDOW")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// Rough per-node saturation estimate for uniform random traffic, in
/// *transactions* per node per cycle: bisection bandwidth over half the
/// nodes, divided by the ~6 flits a request+data-reply pair carries.
/// Only used to scale offered load — the bench reports measured numbers.
fn capacity_estimate(t: &Topology) -> f64 {
    let (w, h) = t.dims();
    let nodes = t.nodes() as f64;
    let wrap = if t.has_wrap() { 2.0 } else { 1.0 };
    let cut_links = if h == 1 { 1.0 } else { f64::from(w.min(h)) };
    let flits_per_txn = 6.0;
    (4.0 * cut_links * wrap) / (nodes * flits_per_txn)
}

struct Measured {
    hit_rate: f64,
    avg_latency: f64,
    p99_latency: f64,
    p999_latency: f64,
    delivered_per_node_cycle: f64,
}

/// Consumes deliveries: requests bounce back as circuit-riding data
/// replies; delivered replies release their requestor's window slot.
fn echo(net: &mut Network, outstanding: &mut [u32]) {
    for (node, d) in net.take_all_delivered() {
        match d.class {
            MessageClass::L1Request => {
                let key = CircuitKey {
                    requestor: d.src,
                    block: d.block,
                };
                net.inject(
                    PacketSpec::new(node, d.src, MessageClass::L2Reply)
                        .with_block(d.block)
                        .with_circuit_key(key),
                );
            }
            MessageClass::L2Reply => outstanding[node.0 as usize] -= 1,
            other => panic!("unexpected class {other}"),
        }
    }
}

/// Drives one point: `window` cycles of closed-loop uniform request
/// injection (per-node Bernoulli at `rate`, gated on a free window
/// slot), replies echoed back over the reserved circuits, then runs to
/// quiescence and asserts nothing deadlocked or was abandoned.
fn run_point(topology: Topology, mechanism: MechanismConfig, rate: f64, window: u64) -> Measured {
    // `NocConfig::va_hol_relief` defaults to on, so the sweep's drain
    // assertion checks the *topologies*, not the legacy allocator's
    // head-of-line shadowing wedge.
    let cfg = NocConfig::paper_baseline(topology, mechanism);
    let mut net = Network::new(cfg).expect("valid config");
    let mut rng = StdRng::seed_from_u64(0xC1C0);
    let n = topology.nodes() as u16;
    let max_outstanding = window_outstanding();
    let mut outstanding = vec![0u32; n as usize];
    let mut block = 0u64;
    let rate = rate.clamp(0.0, 1.0);
    for _ in 0..window {
        for s in 0..n {
            if outstanding[s as usize] < max_outstanding && rng.gen_bool(rate) {
                let src = NodeId(s);
                let dst = loop {
                    let d = NodeId(rng.gen_range(0..n));
                    if d != src {
                        break d;
                    }
                };
                block += 64;
                net.inject(PacketSpec::new(src, dst, MessageClass::L1Request).with_block(block));
                outstanding[s as usize] += 1;
            }
        }
        net.tick();
        echo(&mut net, &mut outstanding);
    }
    // Throughput is measured over the injection window only; the drain
    // tail below would otherwise dilute it.
    let window_delivered = net.stats().total_delivered();
    let window_cycles = net.now();
    // Deadlock-freedom acceptance: everything injected must get out.
    // Closed-loop traffic bounds the in-flight population, so even the
    // saturation point must drain once injection stops.
    let deadline = net.now() + 200 * window + 2_000_000;
    while !net.is_quiescent() && net.now() < deadline {
        net.tick();
        echo(&mut net, &mut outstanding);
    }
    let health = net.health();
    assert!(
        net.is_quiescent(),
        "{}/{}: not quiescent after drain\n{health}",
        topology.label(),
        mechanism.label()
    );
    assert_eq!(
        health.faults.packets_abandoned,
        0,
        "{}/{}: abandoned packets",
        topology.label(),
        mechanism.label()
    );
    assert!(
        outstanding.iter().all(|&o| o == 0),
        "{}/{}: lost replies",
        topology.label(),
        mechanism.label()
    );
    let stats = net.stats();
    let lat = stats.network_latency.get(&MessageGroup::CircuitRep);
    Measured {
        hit_rate: stats.outcome_fraction(CircuitOutcome::OnCircuit),
        avg_latency: lat.map_or(0.0, |l| l.mean()),
        p99_latency: lat.and_then(|l| l.p99()).unwrap_or(0.0),
        p999_latency: lat.and_then(|l| l.p999()).unwrap_or(0.0),
        delivered_per_node_cycle: window_delivered as f64
            / (topology.nodes() as f64 * window_cycles as f64),
    }
}

fn main() {
    let window = cycles();
    let mechanisms = [
        ("baseline", MechanismConfig::baseline()),
        ("fragmented", MechanismConfig::fragmented()),
        ("complete", MechanismConfig::complete()),
        ("complete_noack", MechanismConfig::complete_noack()),
    ];
    let specs = [
        TopologySpec::Mesh,
        TopologySpec::Torus,
        TopologySpec::CMesh { concentration: 4 },
        TopologySpec::Ring,
    ];
    println!("Topology sweep (RC_TOPO_CYCLES={window})\n");
    println!(
        "{:<10} {:>6} {:<15} {:>9} {:>9} {:>9} {:>11}",
        "topology", "cores", "mechanism", "circuit%", "avg lat", "p99 lat", "sat thpt"
    );
    let mut summary = BenchSummary::new("topology");
    let mut raw = Vec::new();
    for spec in specs {
        for &cores in &cores_list() {
            let topology = spec.build(cores).expect("sweep sizes fit every shape");
            let cap = capacity_estimate(&topology);
            for (name, mechanism) in mechanisms {
                let light = run_point(topology, mechanism, 0.3 * cap, window);
                let sat = run_point(topology, mechanism, 1.0, window);
                println!(
                    "{:<10} {:>6} {:<15} {:>8.1}% {:>9.1} {:>9.1} {:>11.4}",
                    topology.label(),
                    cores,
                    name,
                    100.0 * light.hit_rate,
                    light.avg_latency,
                    light.p99_latency,
                    sat.delivered_per_node_cycle,
                );
                summary.push(BenchRow {
                    label: format!("{}/{}/c{}", topology.label(), name, cores),
                    cores: cores as usize,
                    topology: topology.label(),
                    avg_latency: light.avg_latency,
                    p99_latency: light.p99_latency,
                    p999_latency: light.p999_latency,
                    circuit_hit_rate: light.hit_rate.clamp(0.0, 1.0),
                    extra: BTreeMap::from([
                        ("offered_rate".to_owned(), 0.3 * cap),
                        (
                            "saturation_throughput".to_owned(),
                            sat.delivered_per_node_cycle,
                        ),
                    ]),
                });
                raw.push((
                    topology.label(),
                    cores,
                    name,
                    light.hit_rate,
                    light.avg_latency,
                    sat.delivered_per_node_cycle,
                ));
            }
        }
    }
    println!("\n(wraparound topologies refuse circuits across the dateline, so their");
    println!(" hit rates dip below the mesh's; cmesh trades hops for local-port sharing)");
    save_json("topology_sweep", &raw);
    save_bench_summary(&mut summary);
}
