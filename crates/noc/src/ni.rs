//! Network interfaces: injection queues, ejection assembly, circuit-origin
//! records (§4.1: "information of the circuit is also stored in the network
//! interface where the circuit starts"), the timed injection check (§4.7)
//! and scrounger reuse (§4.5).

use crate::config::{NocConfig, VcLayout};
use crate::flit::{Delivered, Flit, FlitKind, PacketId, PacketSpec};
use crate::router::alloc::RoundRobin;
use crate::stats::{CircuitOutcome, NocStats};
use rcsim_core::circuit::{CircuitHandle, CircuitKey};
use rcsim_core::routing::{path_is_healthy, Routing};
use rcsim_core::{
    CircuitMode, CongestionMap, Cycle, MechanismConfig, MessageClass, NodeId, Topology,
    TopologyHealth, Vnet,
};
use rcsim_trace::{EventKind, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// The reply class (and its flit count) a circuit-building request expects.
pub(crate) fn expected_reply_flits(class: MessageClass, flit_bytes: u32) -> u32 {
    match class {
        MessageClass::L1Request => MessageClass::L2Reply.flits(flit_bytes),
        MessageClass::WbData => MessageClass::L2WbAck.flits(flit_bytes),
        MessageClass::MemRequest => MessageClass::MemoryReply.flits(flit_bytes),
        // The MEMORY reply to an L2 write-back is a single-flit ack.
        MessageClass::MemWbData => 1,
        _ => 1,
    }
}

/// A packet waiting at (or streaming out of) the NI.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Pending {
    id: PacketId,
    src: NodeId,
    dst: NodeId,
    class: MessageClass,
    vnet: Vnet,
    len: u32,
    block: u64,
    token: u64,
    created_at: Cycle,
    /// Preserved original injection time for scrounger re-injections.
    injected_at: Option<Cycle>,
    circuit: Option<Box<CircuitHandle>>,
    on_circuit: Option<CircuitKey>,
    scrounger_final: Option<NodeId>,
    /// Earliest cycle the committed circuit stream may start.
    start_at: Cycle,
    /// `false` for scrounger re-injections (already counted).
    count_injection: bool,
}

/// An in-flight outbound stream on one local-input VC (or the circuit path).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Stream {
    pending: Pending,
    next_seq: u32,
    vc: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Origin {
    handle: CircuitHandle,
    registered_at: Cycle,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Assembly {
    head: Option<Flit>,
    received: u32,
}

/// What one NI tick produced. The network owns one reusable instance
/// per tick ([`NiOut::clear`] between NIs) so the per-cycle loop stays
/// allocation-free.
#[derive(Debug, Default)]
pub(crate) struct NiOut {
    /// Flits entering the router's local input port next cycle.
    pub flits: Vec<Flit>,
    /// Circuit undos to start propagating from this node's router.
    pub undos: Vec<(CircuitKey, NodeId)>,
    /// Fully received packets for the tile logic.
    pub delivered: Vec<Delivered>,
    /// Packets that failed the NI's integrity check (corrupted by the
    /// fault layer) and were discarded instead of delivered; the network
    /// schedules their end-to-end retransmission.
    pub corrupt_discards: Vec<PacketId>,
    /// Packets this tick sent on a recorded detour because their DOR path
    /// crossed a dead link or router (added to the fault counters).
    pub reroutes: u64,
    /// Packets this tick sent on a congestion-aware detour: their DOR path
    /// was healthy but crossed a hot region (added to the adaptive
    /// counters, not the fault counters).
    pub congestion_reroutes: u64,
    /// The statistics-counted injection this tick started, if any (class
    /// and flit count of the head emitted with `count_injection` set). At
    /// most one per tick — an NI injects at most one flit per cycle. The
    /// network replays it into [`NocStats::record_injection`]: keeping
    /// *all* NI statistics out of [`Ni::tick`] makes the tick body safe to
    /// run on a shard worker, with the serial merge replaying deliveries
    /// and injections in fixed tile order so the f64 accumulation order —
    /// and therefore every derived statistic — is byte-identical to the
    /// serial path.
    pub injection: Option<(MessageClass, u32)>,
}

impl NiOut {
    /// Empties every output list, keeping the allocations.
    pub(crate) fn clear(&mut self) {
        self.flits.clear();
        self.undos.clear();
        self.delivered.clear();
        self.corrupt_discards.clear();
        self.reroutes = 0;
        self.congestion_reroutes = 0;
        self.injection = None;
    }
}

pub(crate) struct Ni {
    node: NodeId,
    topology: Topology,
    layout: VcLayout,
    mechanism: MechanismConfig,
    flit_bytes: u32,
    buffer_depth: u32,
    /// Per-VN FIFO of packet-switched packets.
    queues: [VecDeque<Pending>; 2],
    /// Per local-input VC, the packet currently streaming into the router.
    streams: Vec<Option<Stream>>,
    /// Credits for the router's local-input VC buffers.
    credits: Vec<u32>,
    rr_stream: RoundRobin,
    vnet_rr: usize,
    /// Committed circuit (and scrounger) packets, in commitment order.
    circuit_queue: VecDeque<Pending>,
    circuit_active: Option<Stream>,
    /// Cycle after which the next circuit stream may start (commitments
    /// are back-to-back and never overlap).
    circuit_link_free_at: Cycle,
    origins: HashMap<CircuitKey, Origin>,
    /// Reversed source routes of detoured requests delivered here, keyed
    /// by `(requestor, block)`: consumed when the matching reply is
    /// emitted so it retraces the request's detour instead of a freshly
    /// recomputed route (path symmetry, DESIGN.md §10). Each route is
    /// stamped with the [`CongestionMap`] era it was recorded under and
    /// only consumed while that era is still current — when the blocking
    /// condition heals (link/router revival, hot region cooling) the era
    /// bumps and the stale detour is ignored, so post-heal replies return
    /// to DOR. Bounded FIFO.
    reply_paths: HashMap<(NodeId, u64), (u64, Vec<NodeId>)>,
    /// Insertion order of `reply_paths` keys, for deterministic eviction.
    reply_path_order: VecDeque<(NodeId, u64)>,
    /// Circuit origins removed by fault-recovery teardown; consumed when
    /// the reply shows up to record the `TornDown` outcome.
    torn: HashSet<CircuitKey>,
    assembling: HashMap<PacketId, Assembly>,
    /// Undos decided at enqueue time, drained at the next tick.
    pending_undos: Vec<(CircuitKey, NodeId)>,
    /// Reused scratch for [`Ni::inject_one`]'s sendable-VC collection.
    sendable: Vec<usize>,
    /// Requests whose circuit construction the adaptive mechanism switch
    /// suppressed (reply path crossed a hot region at enqueue time).
    circuits_suppressed: u64,
    /// Where trace events go; disabled by default.
    sink: TraceSink,
}

impl Ni {
    pub(crate) fn new(node: NodeId, cfg: &NocConfig) -> Self {
        let layout = cfg.vc_layout();
        let total = layout.total();
        Self {
            node,
            topology: cfg.topology,
            layout,
            mechanism: cfg.mechanism,
            flit_bytes: cfg.flit_bytes,
            buffer_depth: cfg.buffer_depth,
            queues: [VecDeque::new(), VecDeque::new()],
            streams: vec![None; total],
            credits: vec![cfg.buffer_depth; total],
            rr_stream: RoundRobin::new(total),
            vnet_rr: 0,
            circuit_queue: VecDeque::new(),
            circuit_active: None,
            circuit_link_free_at: 0,
            origins: HashMap::new(),
            reply_paths: HashMap::new(),
            reply_path_order: VecDeque::new(),
            torn: HashSet::new(),
            assembling: HashMap::new(),
            pending_undos: Vec::new(),
            sendable: Vec::new(),
            circuits_suppressed: 0,
            sink: TraceSink::default(),
        }
    }

    /// How many requests enqueued here had their circuit construction
    /// suppressed by the adaptive mechanism switch.
    pub(crate) fn circuits_suppressed(&self) -> u64 {
        self.circuits_suppressed
    }

    pub(crate) fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// `true` if a fully built circuit origin for `key` is registered here.
    pub(crate) fn has_origin(&self, key: CircuitKey) -> bool {
        self.origins.contains_key(&key)
    }

    /// Fault-recovery teardown (DESIGN.md §10): forgets every circuit
    /// origin whose key is in `doomed`, remembering the key so the reply
    /// that would have ridden it records the `torn_down` outcome instead
    /// of a generic failure. The router entries are removed by the
    /// network; no undo propagation is needed.
    pub(crate) fn purge_origins(&mut self, doomed: &HashSet<CircuitKey>) {
        for key in doomed {
            if self.origins.remove(key).is_some() {
                self.torn.insert(*key);
            }
        }
    }

    /// The circuit keys of every origin registered at this NI, in sorted
    /// order (deterministic iteration for the adaptive teardown).
    pub(crate) fn origin_keys(&self) -> Vec<CircuitKey> {
        let mut keys: Vec<CircuitKey> = self.origins.keys().copied().collect();
        keys.sort_by_key(|k| (k.requestor, k.block));
        keys
    }

    /// Mechanism-switch teardown (DESIGN.md §14): forgets the origin and
    /// starts §4.4 undo propagation to release the router entries hop by
    /// hop — the abort path that is already safe against every in-flight
    /// race (reservations still arriving, borrowed scroungers, streams:
    /// in-use entries are flagged `undo_pending` and removed when the
    /// tail passes). The reply that would have ridden the circuit records
    /// the `torn_down` outcome and goes packet-switched.
    pub(crate) fn teardown_origin(&mut self, key: CircuitKey) -> bool {
        if self.origins.remove(&key).is_some() {
            self.torn.insert(key);
            self.pending_undos.push((key, key.requestor));
            true
        } else {
            false
        }
    }

    /// Protocol-initiated circuit teardown (the L2-forwards-to-owner flow
    /// of §4.4). Records the `undone` outcome and starts undo propagation.
    pub(crate) fn undo_circuit(&mut self, key: CircuitKey, stats: &mut NocStats) -> bool {
        if self.origins.remove(&key).is_some() {
            stats.record_outcome(CircuitOutcome::Undone);
            self.pending_undos.push((key, key.requestor));
            true
        } else {
            false
        }
    }

    /// Enqueues a packet. Returns `true` when the packet is a reply that
    /// committed to riding its own complete circuit (the §4.6 NoAck
    /// condition).
    pub(crate) fn enqueue(
        &mut self,
        spec: PacketSpec,
        id: PacketId,
        now: Cycle,
        cong: &CongestionMap,
        stats: &mut NocStats,
    ) -> bool {
        let len = spec
            .flits_override
            .unwrap_or_else(|| spec.class.flits(self.flit_bytes));
        let mut pending = Pending {
            id,
            src: spec.src,
            dst: spec.dst,
            class: spec.class,
            vnet: spec.class.vnet(),
            len,
            block: spec.block,
            token: spec.token,
            created_at: now,
            injected_at: None,
            circuit: None,
            on_circuit: None,
            scrounger_final: None,
            start_at: now,
            count_injection: true,
        };

        if !spec.class.is_reply() {
            // A circuit needs at least one router-to-router hop: tiles
            // sharing a router on a concentrated mesh exchange traffic
            // through local ports only, where reservations buy nothing.
            if spec.class.builds_circuit()
                && self.mechanism.circuits_enabled()
                && self.topology.hop_count(spec.src, spec.dst) > 0
                && !self.mech_switch_suppresses(&spec, cong)
            {
                let reply_flits = expected_reply_flits(spec.class, self.flit_bytes);
                // The tail of a multi-flit request arrives len-1 cycles
                // after its head, so the responder's turnaround as seen
                // from the head's schedule is that much longer.
                let turnaround = spec.turnaround + (len - 1);
                let handle = CircuitHandle::new(
                    spec.src,
                    spec.block,
                    spec.dst,
                    self.topology.hop_count(spec.src, spec.dst),
                    reply_flits,
                    turnaround,
                )
                .with_policy(self.mechanism.timed);
                pending.circuit = Some(Box::new(handle));
            }
            self.queues[pending.vnet.index()].push_back(pending);
            return false;
        }

        // Reply: resolve its circuit situation.
        let mut committed = false;
        let mut outcome = CircuitOutcome::NotEligible;
        if let Some(key) = spec.circuit_key {
            match self.origins.get(&key) {
                Some(origin) if origin.handle.fully_built() => {
                    if self.mechanism.mode.is_complete() {
                        let earliest = now.max(self.circuit_link_free_at);
                        let start = match origin.handle.timing {
                            None => Some(earliest),
                            Some(t) => t.injection_time(earliest),
                        };
                        match start {
                            Some(t) => {
                                committed = true;
                                outcome = CircuitOutcome::OnCircuit;
                                pending.on_circuit = Some(key);
                                pending.start_at = t;
                                self.circuit_link_free_at = t + len as Cycle;
                                self.origins.remove(&key);
                            }
                            None => {
                                // Missed the reserved window (§4.7): undo
                                // and go packet-switched.
                                outcome = CircuitOutcome::Undone;
                                self.origins.remove(&key);
                                self.pending_undos.push((key, key.requestor));
                            }
                        }
                    } else {
                        // Fragmented: ride wherever reserved; buffers
                        // guarantee progress everywhere else.
                        outcome = CircuitOutcome::OnCircuit;
                        pending.on_circuit = Some(key);
                        self.origins.remove(&key);
                    }
                }
                Some(_) => {
                    // Partially built fragmented circuit: still useful.
                    outcome = CircuitOutcome::Failed;
                    pending.on_circuit = Some(key);
                    self.origins.remove(&key);
                }
                None => {
                    outcome = if self.torn.remove(&key) {
                        // The circuit was built but a dead link or router
                        // tore it down before the reply could ride.
                        CircuitOutcome::TornDown
                    } else if spec.class.circuit_eligible() && self.mechanism.circuits_enabled() {
                        CircuitOutcome::Failed
                    } else {
                        CircuitOutcome::NotEligible
                    };
                }
            }
        }

        // Scrounger reuse (§4.5): ride a foreign complete circuit that
        // ends strictly closer to this reply's destination.
        if !committed
            && pending.on_circuit.is_none()
            && self.mechanism.reuse_circuits
            && spec.dst != self.node
        {
            if let Some(key) = self.best_scrounge_target(spec.dst, now) {
                if !self.mechanism.scrounger_borrow {
                    self.origins.remove(&key);
                }
                let start = now.max(self.circuit_link_free_at);
                outcome = CircuitOutcome::Scrounger;
                pending.dst = key.requestor;
                pending.on_circuit = Some(key);
                pending.scrounger_final = Some(spec.dst);
                pending.start_at = start;
                self.circuit_link_free_at = start + len as Cycle;
            }
        }

        if spec.count_outcome {
            stats.record_outcome(outcome);
        }
        if pending.on_circuit.is_some() && self.mechanism.mode.is_complete() {
            self.circuit_queue.push_back(pending);
        } else {
            self.queues[pending.vnet.index()].push_back(pending);
        }
        committed
    }

    /// The adaptive mechanism switch (DESIGN.md §14): `true` when circuit
    /// construction for this request should be skipped because the reply
    /// it reserves for would cross a hot region. The reply retraces the
    /// request's route YX (§4.1), so the check routes `dst → src` on the
    /// reply vnet; endpoints are exempt for the same reason as in
    /// [`Ni::path_is_congested`] — a reply into or out of the hot region
    /// cannot avoid it, and a reservation still beats queueing there.
    /// Suppression is path-sensitive rather than per-source: a requestor
    /// far from the congestion keeps building circuits on clear paths,
    /// while any requestor whose reply would thread the jam falls back to
    /// Baseline-equivalent packet switching (no timed window to miss, no
    /// undo traffic when it inevitably would).
    fn mech_switch_suppresses(&mut self, spec: &PacketSpec, cong: &CongestionMap) -> bool {
        if !cong.suppress_active() {
            return false;
        }
        let reply = self.topology.route_path(spec.dst, spec.src, Routing::Yx);
        if Self::path_is_congested(&reply, cong) {
            self.circuits_suppressed += 1;
            true
        } else {
            false
        }
    }

    /// Re-injection of a scrounger at its intermediate node: same logical
    /// message, original timestamps, no new statistics.
    fn reenqueue_scrounger(&mut self, flit: &Flit, final_dst: NodeId, now: Cycle) {
        let mut pending = Pending {
            id: flit.packet,
            src: flit.src,
            dst: final_dst,
            class: flit.class,
            vnet: Vnet::Reply,
            len: flit.len,
            block: flit.block,
            token: flit.token,
            created_at: flit.created_at,
            injected_at: Some(flit.injected_at),
            circuit: None,
            on_circuit: None,
            scrounger_final: None,
            start_at: now,
            count_injection: false,
        };
        // A scrounger may chain onto another circuit from here.
        if self.mechanism.reuse_circuits && final_dst != self.node {
            if let Some(key) = self.best_scrounge_target(final_dst, now) {
                if !self.mechanism.scrounger_borrow {
                    self.origins.remove(&key);
                }
                let start = now.max(self.circuit_link_free_at);
                pending.dst = key.requestor;
                pending.on_circuit = Some(key);
                pending.scrounger_final = Some(final_dst);
                pending.start_at = start;
                self.circuit_link_free_at = start + flit.len as Cycle;
                self.circuit_queue.push_back(pending);
                return;
            }
        }
        self.queues[Vnet::Reply.index()].push_back(pending);
    }

    /// End-to-end retransmission of a packet lost or corrupted by the
    /// fault layer: same id, token and creation time, but a fresh plain
    /// packet-switched traversal — a replacement circuit would need a new
    /// request, so retries never ride one. Injection statistics are not
    /// recounted (the original injection already was).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn reenqueue_retry(
        &mut self,
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        class: MessageClass,
        len: u32,
        block: u64,
        token: u64,
        created_at: Cycle,
        now: Cycle,
    ) {
        self.queues[class.vnet().index()].push_back(Pending {
            id,
            src,
            dst,
            class,
            vnet: class.vnet(),
            len,
            block,
            token,
            created_at,
            injected_at: None,
            circuit: None,
            on_circuit: None,
            scrounger_final: None,
            start_at: now,
            count_injection: false,
        });
    }

    /// How long a circuit must have sat idle before a scrounger may take
    /// it. Scrounging *consumes* the circuit (DESIGN.md §4b), so stealing
    /// one whose reply is imminent trades a cheap ride for an expensive
    /// packet-switched data reply; circuits this old belong to
    /// memory-latency transactions that barely notice the loss.
    const SCROUNGE_MIN_IDLE: Cycle = 120;

    /// The long-idle, untimed, fully built circuit from this NI whose
    /// endpoint is closest to (and strictly closer than this node to)
    /// `final_dst`.
    fn best_scrounge_target(&self, final_dst: NodeId, now: Cycle) -> Option<CircuitKey> {
        let here = self.topology.hop_count(self.node, final_dst);
        self.origins
            .iter()
            .filter(|(_, o)| {
                o.handle.fully_built()
                    && o.handle.timing.is_none()
                    && now.saturating_sub(o.registered_at) >= Self::SCROUNGE_MIN_IDLE
            })
            .map(|(k, _)| (*k, self.topology.hop_count(k.requestor, final_dst)))
            .filter(|&(_, d)| d < here)
            .min_by_key(|&(k, d)| (d, k.requestor.0, k.block))
            .map(|(k, _)| k)
    }

    /// One NI cycle: process ejected flits, then inject at most one flit
    /// into the router's local port (circuit streams have priority).
    /// Inputs are drained in place so the caller can reuse the buffers.
    ///
    /// Deliberately statistics-free: deliveries and the counted injection
    /// are surfaced through `out` and replayed into [`NocStats`] by the
    /// network, in tile order, so the tick body can run on a shard worker
    /// (see [`NiOut::injection`]).
    pub(crate) fn tick(
        &mut self,
        now: Cycle,
        ejected: &mut Vec<Flit>,
        credit_arrivals: &mut Vec<usize>,
        topo: &TopologyHealth,
        cong: &CongestionMap,
        out: &mut NiOut,
    ) {
        out.undos.append(&mut self.pending_undos);
        for vc in credit_arrivals.drain(..) {
            self.credits[vc] += 1;
        }
        for flit in ejected.drain(..) {
            self.receive_flit(flit, now, cong, out);
        }
        self.inject_one(now, topo, cong, out);
    }

    /// `true` when a tick with no arriving flits or credits could still
    /// produce output: something is queued, streaming, or an undo is
    /// waiting to propagate. A `false` NI receiving no input this cycle
    /// is a provable no-op, so the event kernel may skip its tick.
    pub(crate) fn is_active(&self) -> bool {
        self.backlog() > 0 || !self.pending_undos.is_empty()
    }

    fn receive_flit(&mut self, flit: Flit, now: Cycle, cong: &CongestionMap, out: &mut NiOut) {
        let a = self.assembling.entry(flit.packet).or_default();
        a.received += 1;
        if flit.kind.is_head() {
            a.head = Some(flit.clone());
        }
        if !flit.kind.is_tail() {
            return;
        }
        let a = self
            .assembling
            .remove(&flit.packet)
            .expect("assembly entry exists for the tail's packet");
        debug_assert_eq!(a.received, flit.len, "flits lost or duplicated in transit");
        let head = a.head.expect("head received before tail");

        if head.corrupted {
            // Failed the integrity check: discard here (even a scrounger
            // leg — the data is bad everywhere) and let the network
            // schedule an end-to-end retransmission from the source.
            out.corrupt_discards.push(head.packet);
            return;
        }

        if let Some(final_dst) = head.scrounger_final {
            if final_dst != self.node {
                self.reenqueue_scrounger(&head, final_dst, now);
                return;
            }
        }

        if head.vnet == Vnet::Request {
            if let Some(path) = &head.path {
                // A detoured request: remember its route reversed so the
                // reply retraces it (path symmetry, DESIGN.md §10).
                let mut rev = path.as_ref().clone();
                rev.reverse();
                self.record_reply_path((head.src, head.block), cong.era(), rev);
            }
        }

        // The delivery statistic is replayed by the network from the
        // `Delivered` record below: its arguments — class, queueing delay
        // (`injected_at - created_at`) and network latency
        // (`delivered_at - injected_at`) — are all fields of the record,
        // so the replay is exact.
        let circuit = head.circuit.as_deref().copied();
        if let Some(h) = &circuit {
            let register = match self.mechanism.mode {
                CircuitMode::Complete | CircuitMode::Ideal => h.fully_built(),
                CircuitMode::Fragmented => h.built_hops > 0,
                CircuitMode::None => false,
            };
            if register {
                self.sink.emit(|| TraceEvent {
                    cycle: now,
                    kind: EventKind::CircuitConfirm {
                        node: self.node.0,
                        requestor: h.key.requestor.0,
                        block: h.key.block,
                    },
                });
                self.origins.insert(
                    h.key,
                    Origin {
                        handle: *h,
                        registered_at: now,
                    },
                );
            }
        }
        out.delivered.push(Delivered {
            packet: head.packet,
            src: head.src,
            dst: self.node,
            class: head.class,
            block: head.block,
            token: head.token,
            created_at: head.created_at,
            injected_at: head.injected_at,
            delivered_at: now,
            circuit,
            // "Rode a circuit" means *its own* circuit: a scrounger ends
            // its circuit leg at an intermediate node and re-injects, so
            // it must not trigger ACK elision at the receiver (§4.6).
            rode_circuit: head.on_circuit.is_some() && head.scrounger_final.is_none(),
        });
    }

    fn inject_one(
        &mut self,
        now: Cycle,
        topo: &TopologyHealth,
        cong: &CongestionMap,
        out: &mut NiOut,
    ) {
        // Circuit streams first: they must hold their committed schedule.
        if self.circuit_active.is_none() {
            if let Some(p) = self.circuit_queue.front() {
                if p.start_at <= now {
                    let pending = self.circuit_queue.pop_front().expect("front checked");
                    let vc = if self.layout.circuit_vcs > 0 {
                        self.layout.circuit_vc(0)
                    } else {
                        0
                    };
                    self.circuit_active = Some(Stream {
                        pending,
                        next_seq: 0,
                        vc,
                    });
                }
            }
        }
        if let Some(mut s) = self.circuit_active.take() {
            let flit = self.emit_flit(&mut s, now, topo, cong, out);
            out.flits.push(flit);
            if s.next_seq < s.pending.len {
                self.circuit_active = Some(s);
            }
            return;
        }

        // Packet-switched: continue an in-flight stream or start one.
        self.collect_sendable();
        if self.sendable.is_empty() {
            self.try_activate(now);
            self.collect_sendable();
        }
        if let Some(vc) = self.rr_stream.grant_among(&self.sendable) {
            let mut s = self.streams[vc].take().expect("sendable stream exists");
            self.credits[vc] -= 1;
            let flit = self.emit_flit(&mut s, now, topo, cong, out);
            out.flits.push(flit);
            if s.next_seq < s.pending.len {
                self.streams[vc] = Some(s);
            }
        }
    }

    /// Rebuilds the scratch list of VCs with a stream and a credit.
    fn collect_sendable(&mut self) {
        self.sendable.clear();
        for vc in 0..self.layout.total() {
            if self.streams[vc].is_some() && self.credits[vc] > 0 {
                self.sendable.push(vc);
            }
        }
    }

    /// Starts a new packet-switched stream if a VC of its class is fully
    /// idle (all credits home, no local stream).
    fn try_activate(&mut self, _now: Cycle) {
        for attempt in 0..2 {
            let vn = (self.vnet_rr + attempt) % 2;
            let vnet = Vnet::ALL[vn];
            if self.queues[vn].is_empty() {
                continue;
            }
            let vc = self
                .layout
                .allocatable_vcs(vnet)
                .find(|&vc| self.streams[vc].is_none() && self.credits[vc] == self.buffer_depth);
            if let Some(vc) = vc {
                let pending = self.queues[vn]
                    .pop_front()
                    .expect("queue checked non-empty");
                self.streams[vc] = Some(Stream {
                    pending,
                    next_seq: 0,
                    vc,
                });
                self.vnet_rr = (vn + 1) % 2;
                return;
            }
        }
    }

    fn emit_flit(
        &mut self,
        s: &mut Stream,
        now: Cycle,
        topo: &TopologyHealth,
        cong: &CongestionMap,
        out: &mut NiOut,
    ) -> Flit {
        let p = &mut s.pending;
        let mut path = None;
        if s.next_seq == 0 {
            if p.injected_at.is_none() {
                p.injected_at = Some(now);
            }
            if p.count_injection {
                out.injection = Some((p.class, p.len));
            }
            // Scrounger legs and retransmissions re-emit: the breakdown
            // post-pass keeps the first injection per packet id.
            self.sink.emit(|| TraceEvent {
                cycle: now,
                kind: EventKind::NiInject {
                    packet: p.id.0,
                    node: self.node.0,
                },
            });
            if (topo.is_degraded() || cong.detour_active()) && p.dst != self.node {
                path = self.plan_detour(p, now, topo, cong, out);
            }
        }
        let kind = FlitKind::for_position(s.next_seq, p.len);
        let flit = Flit {
            packet: p.id,
            kind,
            seq: s.next_seq,
            len: p.len,
            src: p.src,
            dst: p.dst,
            class: p.class,
            vnet: p.vnet,
            vc: s.vc,
            circuit: if kind.is_head() {
                p.circuit.clone()
            } else {
                None
            },
            on_circuit: p.on_circuit,
            scrounger_final: p.scrounger_final,
            block: p.block,
            token: p.token,
            created_at: p.created_at,
            injected_at: p.injected_at.expect("set on head emission"),
            corrupted: false,
            path,
        };
        s.next_seq += 1;
        flit
    }

    /// When the packet's DOR route crosses a dead link or router — or a
    /// hot region the adaptive policy wants avoided — the detour to record
    /// in its head flit: the reversed route of the request it answers when
    /// a current-era one was recorded (path symmetry, DESIGN.md §10), else
    /// a deterministic BFS around the dead (and, when adaptation is on,
    /// hot) region. `None` when DOR is healthy and uncongested (the
    /// ordinary case, bit-identical to a fault-free run), when every
    /// healthy route crosses the hot region anyway, or when no healthy
    /// route exists at all — then the flit is emitted on DOR and, for
    /// faults, the end-to-end retry/abandon machinery takes over.
    // The Box matches `Flit::path`, which keeps the no-detour case
    // pointer-sized on every head flit.
    #[allow(clippy::box_collection)]
    fn plan_detour(
        &mut self,
        p: &mut Pending,
        now: Cycle,
        topo: &TopologyHealth,
        cong: &CongestionMap,
        out: &mut NiOut,
    ) -> Option<Box<Vec<NodeId>>> {
        let dor = self
            .topology
            .route_path(self.node, p.dst, Routing::for_vnet(p.vnet));
        let dor_healthy = path_is_healthy(&dor, topo);
        let dor_congested = cong.detour_active() && Self::path_is_congested(&dor, cong);
        if dor_healthy && !dor_congested {
            return None;
        }
        let my_router = self.topology.router_of(self.node);
        let recorded = if p.vnet == Vnet::Reply {
            self.reply_paths
                .remove(&(p.dst, p.block))
                .filter(|(era, r)| {
                    *era == cong.era()
                        && r.first() == Some(&my_router)
                        && path_is_healthy(r, topo)
                        // While adaptive detours are live, every reply-VN
                        // path must obey the east-last turn model (see
                        // `route_path_healthy_avoiding`). Reversed
                        // congestion detours comply by construction
                        // (reverse of west-first); a reversed *fault*
                        // detour may not — those replies re-plan instead.
                        && (!cong.detour_active() || self.path_obeys_east_last(r))
                })
                .map(|(_, r)| r)
        } else {
            None
        };
        let detour = recorded.or_else(|| {
            if cong.detour_active() {
                // Prefer a route that is both healthy and clear of hot
                // regions; when none exists, congestion alone is not
                // worth stalling for — fall through.
                if let Some(clear) = self.topology.route_path_healthy_avoiding(
                    self.node,
                    p.dst,
                    Routing::for_vnet(p.vnet),
                    topo,
                    cong,
                ) {
                    return Some(clear);
                }
            }
            if dor_healthy {
                None
            } else {
                self.topology.route_path_healthy(self.node, p.dst, topo)
            }
        })?;
        // A detoured request reserves nothing: the reservation mirror
        // assumes the reply retraces the request's DOR route (§4.1),
        // which the detour breaks.
        p.circuit = None;
        if dor_healthy {
            out.congestion_reroutes += 1;
        } else {
            out.reroutes += 1;
        }
        self.sink.emit(|| TraceEvent {
            cycle: now,
            kind: EventKind::NiReroute {
                packet: p.id.0,
                node: self.node.0,
            },
        });
        Some(Box::new(detour))
    }

    /// `true` when the recorded path satisfies the reply VN's east-last
    /// turn model: after its first East hop, every hop is East.
    fn path_obeys_east_last(&self, path: &[NodeId]) -> bool {
        let mut gone_east = false;
        for w in path.windows(2) {
            let east = self.topology.port_between(w[0], w[1]) == Some(rcsim_core::PORT_EAST);
            if gone_east && !east {
                return false;
            }
            gone_east |= east;
        }
        true
    }

    /// `true` when the routed path crosses a hot *interior* router. The
    /// endpoints are exempt: traffic into or out of a hot router cannot
    /// avoid it, so detouring such a packet would burn hops for nothing.
    fn path_is_congested(path: &[NodeId], cong: &CongestionMap) -> bool {
        path.len() > 2
            && path[1..path.len() - 1]
                .iter()
                .any(|r| cong.is_hot(r.index()))
    }

    /// Remembers the reversed route of a detoured request so its reply can
    /// retrace it, stamped with the current staleness era. Bounded: the
    /// oldest recorded route is evicted first.
    fn record_reply_path(&mut self, key: (NodeId, u64), era: u64, rev: Vec<NodeId>) {
        const REPLY_PATH_CAP: usize = 256;
        if self.reply_paths.insert(key, (era, rev)).is_none() {
            self.reply_path_order.push_back(key);
        }
        while self.reply_paths.len() > REPLY_PATH_CAP {
            let Some(old) = self.reply_path_order.pop_front() else {
                break;
            };
            self.reply_paths.remove(&old);
        }
    }

    /// Number of packets waiting or streaming (diagnostics).
    pub(crate) fn backlog(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum::<usize>()
            + self.circuit_queue.len()
            + self.streams.iter().flatten().count()
            + usize::from(self.circuit_active.is_some())
    }

    /// The full dynamic state, for checkpointing. Hash-keyed maps and
    /// sets are flattened to deterministically ordered vectors (sorted by
    /// key), so the snapshot bytes are a pure function of the simulation
    /// state. `reply_path_order` is captured verbatim — it is the
    /// eviction history, which legitimately holds keys already removed
    /// from the map (a consumed reply path leaves its order slot behind)
    /// and duplicates (a re-recorded path is pushed again), and the
    /// bounded eviction's future pops depend on exactly that sequence.
    pub(crate) fn snapshot(&self) -> NiSnapshot {
        let mut origins: Vec<(CircuitKey, Origin)> =
            self.origins.iter().map(|(k, o)| (*k, o.clone())).collect();
        origins.sort_by_key(|(k, _)| (k.requestor, k.block));
        let mut reply_paths: Vec<ReplyPathEntry> = self
            .reply_paths
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        reply_paths.sort_by_key(|&((node, block), _)| (node, block));
        let mut torn: Vec<CircuitKey> = self.torn.iter().copied().collect();
        torn.sort_by_key(|k| (k.requestor, k.block));
        let mut assembling: Vec<(PacketId, Assembly)> = self
            .assembling
            .iter()
            .map(|(k, a)| (*k, a.clone()))
            .collect();
        assembling.sort_by_key(|(k, _)| k.0);
        NiSnapshot {
            queues: self.queues.clone(),
            streams: self.streams.clone(),
            credits: self.credits.clone(),
            rr_stream: self.rr_stream.clone(),
            vnet_rr: self.vnet_rr,
            circuit_queue: self.circuit_queue.clone(),
            circuit_active: self.circuit_active.clone(),
            circuit_link_free_at: self.circuit_link_free_at,
            origins,
            reply_paths,
            reply_path_order: self.reply_path_order.clone(),
            torn,
            assembling,
            pending_undos: self.pending_undos.clone(),
            circuits_suppressed: self.circuits_suppressed,
        }
    }

    /// Overwrites the dynamic state from an [`Ni::snapshot`] taken on an
    /// identically-configured NI.
    pub(crate) fn restore(&mut self, snap: NiSnapshot) {
        self.queues = snap.queues;
        self.streams = snap.streams;
        self.credits = snap.credits;
        self.rr_stream = snap.rr_stream;
        self.vnet_rr = snap.vnet_rr;
        self.circuit_queue = snap.circuit_queue;
        self.circuit_active = snap.circuit_active;
        self.circuit_link_free_at = snap.circuit_link_free_at;
        self.reply_path_order = snap.reply_path_order;
        self.reply_paths = snap.reply_paths.into_iter().collect();
        self.origins = snap.origins.into_iter().collect();
        self.torn = snap.torn.into_iter().collect();
        self.assembling = snap.assembling.into_iter().collect();
        self.pending_undos = snap.pending_undos;
        self.circuits_suppressed = snap.circuits_suppressed;
    }
}

/// One saved reply path: `(requestor, block)` mapped to its recording
/// cycle and hop list.
type ReplyPathEntry = ((NodeId, u64), (u64, Vec<NodeId>));

/// Complete dynamic state of one [`Ni`], for checkpointing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct NiSnapshot {
    queues: [VecDeque<Pending>; 2],
    streams: Vec<Option<Stream>>,
    credits: Vec<u32>,
    rr_stream: RoundRobin,
    vnet_rr: usize,
    circuit_queue: VecDeque<Pending>,
    circuit_active: Option<Stream>,
    circuit_link_free_at: Cycle,
    origins: Vec<(CircuitKey, Origin)>,
    reply_paths: Vec<ReplyPathEntry>,
    reply_path_order: VecDeque<(NodeId, u64)>,
    torn: Vec<CircuitKey>,
    assembling: Vec<(PacketId, Assembly)>,
    pending_undos: Vec<(CircuitKey, NodeId)>,
    circuits_suppressed: u64,
}
