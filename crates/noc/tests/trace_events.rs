//! Event-conservation tests for the trace layer: every traced enqueue
//! reaches exactly one terminal event (ejected or dropped after
//! exhausting retries) — with and without fault injection — and a
//! disabled sink observes nothing.

#![cfg(feature = "trace")]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
use rcsim_noc::{FaultConfig, Network, NocConfig, PacketSpec};
use rcsim_trace::{EventKind, TraceSink};
use std::collections::BTreeMap;

/// Drives a request/reply workload until the network quiesces, then
/// checks the conservation invariant on the trace: one terminal event
/// (eject or drop) per enqueued packet, no terminals for unknown packets.
fn check_conservation(faults: FaultConfig, mechanism: MechanismConfig, seed: u64) {
    let mesh = Mesh::new(4, 4).expect("valid mesh");
    let cfg = NocConfig::paper_baseline(mesh, mechanism);
    let mut net = Network::with_faults(cfg, faults).expect("valid network");
    let sink = TraceSink::ring(1 << 16);
    net.set_trace_sink(sink.clone());

    let mut rng = StdRng::seed_from_u64(seed);
    let mut pending: Vec<PacketSpec> = (0..120u64)
        .map(|i| {
            let src = NodeId(rng.gen_range(0..16));
            let dst = loop {
                let d = NodeId(rng.gen_range(0..16));
                if d != src {
                    break d;
                }
            };
            PacketSpec::new(src, dst, MessageClass::L1Request).with_block((i + 1) * 64)
        })
        .collect();

    for _ in 0..60_000u64 {
        for _ in 0..2 {
            if let Some(spec) = pending.pop() {
                net.inject(spec);
            }
        }
        net.tick();
        for (node, d) in net.take_all_delivered() {
            if d.class == MessageClass::L1Request {
                let key = CircuitKey {
                    requestor: d.src,
                    block: d.block,
                };
                net.inject(
                    PacketSpec::new(node, d.src, MessageClass::L2Reply)
                        .with_block(d.block)
                        .with_circuit_key(key),
                );
            }
        }
        if pending.is_empty() && net.health().quiescent {
            break;
        }
    }
    assert!(
        net.health().quiescent,
        "network failed to drain within the cycle budget"
    );

    let events = sink.drain();
    assert_eq!(sink.dropped(), 0, "ring overflow would void the invariant");
    let mut terminals: BTreeMap<u64, u32> = BTreeMap::new();
    let mut enqueued: BTreeMap<u64, u32> = BTreeMap::new();
    for e in &events {
        match e.kind {
            EventKind::NiEnqueue { packet, .. } => *enqueued.entry(packet).or_insert(0) += 1,
            EventKind::NiEject { packet, .. } | EventKind::PacketDropped { packet, .. } => {
                *terminals.entry(packet).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    assert!(!enqueued.is_empty(), "workload produced no traced traffic");
    for (packet, n) in &enqueued {
        assert_eq!(*n, 1, "packet {packet} enqueued {n} times");
        assert_eq!(
            terminals.get(packet),
            Some(&1),
            "packet {packet} has {:?} terminal events, want exactly 1",
            terminals.get(packet).copied().unwrap_or(0)
        );
    }
    for packet in terminals.keys() {
        assert!(
            enqueued.contains_key(packet),
            "terminal event for never-enqueued packet {packet}"
        );
    }
}

#[test]
fn every_inject_terminates_exactly_once() {
    check_conservation(FaultConfig::none(), MechanismConfig::complete_noack(), 7);
    check_conservation(FaultConfig::none(), MechanismConfig::baseline(), 8);
}

#[test]
fn conservation_holds_under_fault_injection() {
    // Link drops force NI retransmissions (degraded deliveries); payload
    // corruption forces discard-before-retry. Either way each packet must
    // still end in exactly one eject or one post-retry drop.
    let faults = FaultConfig {
        link_drop_rate: 0.02,
        link_corrupt_rate: 0.02,
        seed: 0xFEED,
        ..FaultConfig::none()
    };
    check_conservation(faults, MechanismConfig::complete(), 21);
}

#[test]
fn disabled_sink_observes_nothing() {
    let mesh = Mesh::new(4, 4).expect("valid mesh");
    let cfg = NocConfig::paper_baseline(mesh, MechanismConfig::complete_noack());
    let mut net = Network::new(cfg).expect("valid network");
    let sink = TraceSink::Disabled;
    net.set_trace_sink(sink.clone());
    assert!(!sink.is_enabled());

    for i in 0..40u64 {
        net.inject(
            PacketSpec::new(NodeId((i % 16) as u16), NodeId(((i + 3) % 16) as u16), {
                MessageClass::L1Request
            })
            .with_block((i + 1) * 64),
        );
        for _ in 0..10 {
            net.tick();
        }
        net.take_all_delivered();
    }
    assert!(sink.snapshot().is_empty());
    assert_eq!(sink.dropped(), 0);
}
