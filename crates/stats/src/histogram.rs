//! Fixed-width binned histograms.

use serde::{Deserialize, Serialize};

/// A histogram with fixed-width bins over `[0, bin_width · bins)` plus an
/// overflow bin, used for latency distributions.
///
/// # Examples
///
/// ```
/// use rcsim_stats::Histogram;
///
/// let mut h = Histogram::new(10.0, 10);
/// h.record(5.0);
/// h.record(15.0);
/// h.record(1000.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not strictly positive or `bins` is zero.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            bin_width,
            bins: vec![0; bins],
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation. Negative values clamp into the first bin.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let idx = (x.max(0.0) / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Arithmetic mean of all recorded values (exact, not binned).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bin counts (excluding overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate value at quantile `q ∈ [0, 1]` (bin upper edge of the
    /// bin containing the quantile). Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.bin_width);
            }
        }
        // Quantile lands in the overflow bin.
        Some(self.bins.len() as f64 * self.bin_width)
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bin configuration differs.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(5.0, 4);
        h.record(0.0);
        h.record(4.9);
        h.record(5.0);
        h.record(19.9);
        h.record(20.0);
        assert_eq!(h.bins(), &[2, 1, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn negative_clamps_to_first_bin() {
        let mut h = Histogram::new(1.0, 2);
        h.record(-3.0);
        assert_eq!(h.bins(), &[1, 0]);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new(100.0, 2);
        h.record(1.0);
        h.record(2.0);
        assert!((h.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(1.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        assert_eq!(Histogram::new(1.0, 1).quantile(0.5), None);
    }

    #[test]
    fn quantile_in_overflow() {
        let mut h = Histogram::new(1.0, 2);
        h.record(100.0);
        assert_eq!(h.quantile(0.5), Some(2.0));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(1.0, 3);
        a.record(0.5);
        let mut b = Histogram::new(1.0, 3);
        b.record(1.5);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.bins(), &[1, 1, 0]);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn merge_rejects_mismatched() {
        let mut a = Histogram::new(1.0, 3);
        let b = Histogram::new(2.0, 3);
        a.merge(&b);
    }
}
