//! Kernel bench — dense vs event-driven simulation kernel on the
//! low-load quick grid. The event kernel (idle-skip scheduling,
//! `RC_KERNEL=event`) must produce **byte-identical** results while
//! skipping quiescent tiles; this bench measures the wall-clock payoff
//! and re-asserts the identity on every point it times.
//!
//! Writes `BENCH_kernel.json` with one row per (app, cores, mechanism)
//! point: `dense_ms` / `event_ms` (best of [`REPS`] serial repetitions),
//! the resulting `speedup`, and the offered `load` in flits/node/cycle.

use rcsim_bench::{bench_row, cores_list, save_bench_summary, save_json, BenchSummary, PointSpec};
use rcsim_core::MechanismConfig;
use rcsim_system::{run_sim_with_kernel, KernelMode, RunResult};
use std::time::Instant;

/// Serial repetitions per (point, kernel); the minimum wall time is
/// reported to shave scheduler noise.
const REPS: u32 = 2;

/// Times `cfg` under `kernel`, returning (best wall ms, result).
fn time_kernel(spec: &PointSpec, kernel: KernelMode) -> (f64, RunResult) {
    let cfg = spec.config();
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = run_sim_with_kernel(&cfg, kernel)
            .unwrap_or_else(|e| panic!("{} failed: {e}", spec.label()));
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (best, result.expect("REPS >= 1"))
}

fn main() {
    println!("Kernel bench — dense vs event-driven (idle-skip) simulation kernel\n");
    let app = rcsim_bench::experiment_apps()
        .into_iter()
        .next()
        .expect("at least one experiment app");
    let mechanisms = [
        MechanismConfig::baseline(),
        MechanismConfig::complete_noack(),
    ];

    let mut summary = BenchSummary::new("kernel");
    println!(
        "{:<34} {:>10} {:>10} {:>9} {:>12}",
        "point", "dense ms", "event ms", "speedup", "load f/n/cyc"
    );
    for cores in cores_list() {
        for mechanism in mechanisms {
            let spec = PointSpec::new(cores, mechanism, &app, 1);
            let (dense_ms, dense) = time_kernel(&spec, KernelMode::Dense);
            let (event_ms, event) = time_kernel(&spec, KernelMode::Event);

            // The whole point of the event kernel: not one byte of the
            // report may differ. Checked on the raw results and on the
            // condensed bench rows.
            let dense_json = serde_json::to_string(&dense).expect("serialize");
            let event_json = serde_json::to_string(&event).expect("serialize");
            assert_eq!(
                dense_json,
                event_json,
                "kernels diverged on {}",
                spec.label()
            );
            let label = format!("{}/{}/{}c", app, mechanism.label(), cores);
            let dense_row = bench_row(&label, cores, std::slice::from_ref(&dense));
            let mut row = bench_row(&label, cores, std::slice::from_ref(&event));
            assert_eq!(dense_row, row, "bench rows diverged on {}", spec.label());

            let speedup = dense_ms / event_ms.max(1e-9);
            // `RunResult::load` is flits/node per 100 cycles.
            let load = dense.load / 100.0;
            println!(
                "{:<34} {:>10.2} {:>10.2} {:>8.2}x {:>12.4}",
                label, dense_ms, event_ms, speedup, load
            );
            row.extra.insert("dense_ms".into(), dense_ms);
            row.extra.insert("event_ms".into(), event_ms);
            row.extra.insert("speedup".into(), speedup);
            row.extra.insert("load_flits_per_node_cycle".into(), load);
            summary.push(row);
        }
    }

    let low_load: Vec<&rcsim_trace::BenchRow> = summary
        .rows
        .iter()
        .filter(|r| r.extra["load_flits_per_node_cycle"] <= 0.05)
        .collect();
    if let Some(best) = low_load
        .iter()
        .max_by(|a, b| a.extra["speedup"].total_cmp(&b.extra["speedup"]))
    {
        println!(
            "\nbest low-load (<= 0.05 flits/node/cycle) speedup: {:.2}x on {}",
            best.extra["speedup"], best.label
        );
    }

    save_json(
        "kernel",
        &summary
            .rows
            .iter()
            .map(|r| (r.label.clone(), r.extra.clone()))
            .collect::<Vec<_>>(),
    );
    save_bench_summary(&mut summary);
}
