//! Running summary statistics.

use serde::{Deserialize, Serialize};

/// Running count / mean / variance accumulator using Welford's online
/// algorithm, plus min/max tracking.
///
/// Used throughout the workspace for latency, energy and speedup series.
/// The 95% confidence half-width uses the normal approximation
/// (`1.96 · stderr`), which is what the paper's error bars report for its
/// 21-application samples.
///
/// # Examples
///
/// ```
/// use rcsim_stats::Accumulator;
///
/// let acc: Accumulator = [2.0_f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
///     .into_iter()
///     .collect();
/// assert_eq!(acc.mean(), 5.0);
/// assert!((acc.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds `n` identical observations of value `x` (e.g. histogram bins).
    pub fn add_n(&mut self, x: f64, n: u64) {
        for _ in 0..n {
            self.add(x);
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Arithmetic mean. Returns 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Unbiased sample variance (`n - 1` denominator); 0 if fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); 0 if empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean (`s / sqrt(n)`); 0 if fewer than two
    /// observations.
    pub fn std_err(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval of the mean, using the
    /// normal approximation (`1.96 · stderr`).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

impl Extend<f64> for Accumulator {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_safe() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.std_err(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }

    #[test]
    fn single_observation() {
        let mut acc = Accumulator::new();
        acc.add(42.0);
        assert_eq!(acc.mean(), 42.0);
        assert_eq!(acc.min(), Some(42.0));
        assert_eq!(acc.max(), Some(42.0));
        assert_eq!(acc.sample_variance(), 0.0);
    }

    #[test]
    fn known_variance() {
        let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((acc.population_variance() - 4.0).abs() < 1e-12);
        assert!((acc.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let all: Accumulator = (0..100).map(|i| (i * i) as f64).collect();
        let mut a: Accumulator = (0..37).map(|i| (i * i) as f64).collect();
        let b: Accumulator = (37..100).map(|i| (i * i) as f64).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-6);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Accumulator = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&Accumulator::new());
        assert_eq!(a, before);

        let mut e = Accumulator::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn add_n_equals_repeated_add() {
        let mut a = Accumulator::new();
        a.add_n(3.0, 5);
        let b: Accumulator = std::iter::repeat_n(3.0, 5).collect();
        assert_eq!(a.count(), b.count());
        assert!((a.mean() - b.mean()).abs() < 1e-12);
    }

    #[test]
    fn ci95_shrinks_with_samples() {
        let small: Accumulator = (0..10).map(|i| i as f64).collect();
        let large: Accumulator = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }
}
