//! Wait-for-graph deadlock diagnoser regression, pinned to the legacy
//! VC allocator's reproducible wedge (see `echo_probe.rs`): with
//! `va_hol_relief` off, the allocator considers only the oldest waiting
//! VC per input port, and sustained bidirectional echo traffic under
//! Complete circuits closes a request/reply credit cycle into a hard
//! deadlock within a few hundred cycles. The watchdog must (a) declare
//! the stall, (b) attach a [`DeadlockReport`] whose resources form an
//! actual cycle in wait order, and (c) render it in the `Display` form
//! `run_or_die` prints. A livelock-free healthy run must *not* carry a
//! report.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
use rcsim_noc::{DeadlockReport, Network, NocConfig, PacketSpec, WatchdogConfig};

/// Closed-loop echo (as in `echo_probe.rs`) on a network with the legacy
/// oldest-only allocator: inject for a burst, then stop and let the
/// network drain. A healthy network quiesces; the wedged request/reply
/// cycle survives the drain, global progress ceases, and the watchdog
/// fires. Returns the network at the stall, `None` if it drained clean.
fn drive_until_stall(cores: u16, rate: f64, window: u32, seed: u64) -> Option<Network> {
    let mesh = Mesh::square(cores).unwrap();
    let mut cfg = NocConfig::paper_baseline(mesh, MechanismConfig::complete());
    cfg.va_hol_relief = false;
    let mut net = Network::new(cfg).unwrap();
    net.set_watchdog(WatchdogConfig {
        stall_window: 400,
        ..WatchdogConfig::default()
    });
    let n = mesh.nodes() as u16;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outstanding = vec![0u32; n as usize];
    let mut block = 0u64;
    let echo = |net: &mut Network, outstanding: &mut [u32]| {
        for (node, d) in net.take_all_delivered() {
            if d.class == MessageClass::L1Request {
                let key = CircuitKey {
                    requestor: d.src,
                    block: d.block,
                };
                net.inject(
                    PacketSpec::new(node, d.src, MessageClass::L2Reply)
                        .with_block(d.block)
                        .with_circuit_key(key),
                );
            } else {
                outstanding[node.0 as usize] -= 1;
            }
        }
    };
    for _ in 0..600u64 {
        for s in 0..n {
            if outstanding[s as usize] < window && rng.gen_bool(rate) {
                let dst = loop {
                    let d = NodeId(rng.gen_range(0..n));
                    if d != NodeId(s) {
                        break d;
                    }
                };
                block += 64;
                net.inject(
                    PacketSpec::new(NodeId(s), dst, MessageClass::L1Request).with_block(block),
                );
                outstanding[s as usize] += 1;
            }
        }
        net.tick();
        echo(&mut net, &mut outstanding);
    }
    let deadline = net.now() + 30_000;
    while !net.is_quiescent() && net.now() < deadline {
        net.tick();
        echo(&mut net, &mut outstanding);
        if net.stalled() {
            return Some(net);
        }
    }
    None
}

/// The structural invariant of a reported cycle: every listed resource
/// is a distinct blocked input VC, and (when untruncated) each entry's
/// wanted channel leads to the next entry in wait order.
fn assert_well_formed(report: &DeadlockReport) {
    assert!(
        report.cycle_len >= 2,
        "a circular wait involves at least two resources"
    );
    assert!(!report.resources.is_empty(), "cycle with no resources");
    assert!(report.resources.len() <= report.cycle_len);
    assert_eq!(
        report.truncated,
        report.resources.len() < report.cycle_len,
        "truncation flag disagrees with the listed length"
    );
    let mut seen = std::collections::BTreeSet::new();
    for r in &report.resources {
        assert!(
            seen.insert((r.node, r.in_port, r.vc)),
            "resource listed twice in one cycle"
        );
        assert!(
            r.packet.is_some(),
            "a blocked VC in a wait cycle holds a packet"
        );
        if r.out_vc.is_some() {
            assert_eq!(r.credits, 0, "a credit wait has zero credits left");
        }
    }
}

#[test]
fn legacy_allocator_wedge_is_diagnosed_as_a_cycle() {
    // The pinned repro: the legacy allocator wedges this configuration
    // deterministically (same seed → same wedge) within a few thousand
    // cycles.
    let mut diagnosed = 0;
    for seed in 0..4u64 {
        let Some(net) = drive_until_stall(16, 0.4, 64, seed) else {
            continue;
        };
        let health = net.health();
        assert!(health.stalled, "watchdog fired, report must say so");
        let Some(report) = &health.deadlock else {
            // A stall without a circular wait (e.g. pure injection
            // backlog) is legal for the diagnoser; the pinned seeds
            // below must produce at least one true cycle.
            continue;
        };
        assert_well_formed(report);
        let rendered = format!("{health}");
        assert!(
            rendered.contains("DEADLOCK: circular wait over"),
            "Display must render the deadlock section:\n{rendered}"
        );
        assert!(
            rendered.contains("wants out"),
            "Display must render each blocked resource:\n{rendered}"
        );
        diagnosed += 1;
    }
    assert!(
        diagnosed > 0,
        "no seed produced a diagnosed deadlock — the pinned wedge is gone"
    );
}

#[test]
fn report_respects_the_entry_cap() {
    for seed in 0..4u64 {
        let Some(mut net) = drive_until_stall(16, 0.4, 64, seed) else {
            continue;
        };
        net.set_watchdog(WatchdogConfig {
            stall_window: 400,
            max_report_entries: 2,
            ..WatchdogConfig::default()
        });
        let health = net.health();
        if let Some(report) = &health.deadlock {
            assert!(report.resources.len() <= 2, "cap ignored");
            if report.cycle_len > 2 {
                assert!(report.truncated, "truncation must be flagged");
            }
            return;
        }
    }
    panic!("no seed produced a diagnosed deadlock under the entry cap");
}

/// A healthy network — same traffic, modern allocator — must stall
/// nowhere and carry no deadlock report, and a quiescent network's
/// health must stay clean.
#[test]
fn healthy_runs_carry_no_deadlock_report() {
    let mesh = Mesh::square(16).unwrap();
    let cfg = NocConfig::paper_baseline(mesh, MechanismConfig::complete());
    assert!(cfg.va_hol_relief, "relief is the default");
    let mut net = Network::new(cfg).unwrap();
    net.inject(PacketSpec::new(NodeId(0), NodeId(15), MessageClass::L1Request).with_block(64));
    for _ in 0..200 {
        net.tick();
    }
    let health = net.health();
    assert!(!health.stalled);
    assert!(
        health.deadlock.is_none(),
        "no stall, no deadlock report: {health}"
    );
}
