//! Adaptive runtime policy: a deterministic controller that watches
//! per-region occupancy telemetry and, on a fixed decision epoch, flips
//! regions between *calm* and *hot*.
//!
//! The controller itself is a pure state machine: [`PolicyController::decide`]
//! is a function of `(controller state, now, samples)` only — no RNG, no
//! clocks, no host-dependent input — which is what keeps adaptive runs
//! bit-reproducible per seed and invariant under `RC_KERNEL` / `RC_SHARDS`
//! (decisions are taken in the serial tick prologue; see DESIGN.md §14).
//! What a *hot* verdict means is up to the embedder (`rcsim-noc` suppresses
//! circuit construction and plans congestion-aware detours); this module only
//! decides *when* a region changes state:
//!
//! * **hysteresis** — a region enters `Hot` at `score >= hot_enter` and
//!   leaves it at `score <= hot_exit`, with `hot_exit <= hot_enter`, so a
//!   score dithering between the two thresholds cannot oscillate;
//! * **min-dwell** — after any switch, the region holds its state for at
//!   least `min_dwell` cycles, bounding the switch frequency outright.
//!
//! Regions are contiguous router ranges from a [`ShardPlan`](crate::shard)
//! built with `regions` domains — deliberately independent of the
//! `RC_SHARDS` execution plan, so the region map (and therefore every
//! decision) is identical at any shard count.

use crate::config::ConfigError;
use crate::types::Cycle;
use serde::{Deserialize, Serialize};

/// Fixed-point scale for [`RegionSample::score`]: scores are occupancy
/// per router times this constant, so integer thresholds can express
/// fractional per-router loads without floating point (which would
/// jeopardise cross-host determinism).
pub const SCORE_SCALE: u64 = 256;

fn default_decision_epoch() -> Cycle {
    50
}
fn default_regions() -> usize {
    16
}
fn default_hot_enter() -> u64 {
    4_096
}
fn default_hot_exit() -> u64 {
    2_048
}
fn default_min_dwell() -> Cycle {
    100
}
fn default_true() -> bool {
    true
}

/// Knobs for the adaptive runtime policy. Absent from a `SimConfig` by
/// default (`Option<AdaptiveConfig>` with `skip_serializing_if`), so cache
/// keys and goldens are byte-identical when adaptation is off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Cycles between controller decisions. Decisions happen at
    /// `t = decision_epoch, 2·decision_epoch, …` in the serial tick
    /// prologue; must be non-zero.
    #[serde(default = "default_decision_epoch")]
    pub decision_epoch: Cycle,
    /// Number of contiguous router regions (clamped to the router count,
    /// like `RC_SHARDS`); must be non-zero.
    #[serde(default = "default_regions")]
    pub regions: usize,
    /// A calm region becomes hot when its score reaches this threshold
    /// (units of [`SCORE_SCALE`] per router — 4096 = sixteen occupied
    /// flit slots per router on average, well above the light-load band
    /// an 8×8 mesh idles in but reached within one epoch of a hotspot
    /// burst).
    #[serde(default = "default_hot_enter")]
    pub hot_enter: u64,
    /// A hot region becomes calm when its score drops to this threshold
    /// or below. Must not exceed `hot_enter` (hysteresis band).
    #[serde(default = "default_hot_exit")]
    pub hot_exit: u64,
    /// Minimum cycles between two switches of the same region.
    #[serde(default = "default_min_dwell")]
    pub min_dwell: Cycle,
    /// Plan congestion-aware detours around hot regions' routers
    /// (reuses the fault-detour path-carrying machinery).
    #[serde(default = "default_true")]
    pub detour: bool,
    /// Switch mechanism per path: suppress circuit construction for
    /// requests whose reply path crosses a hot region (those replies fall
    /// back to Baseline-equivalent packet switching), and tear down
    /// established circuits through a region on its calm→hot switch.
    #[serde(default = "default_true")]
    pub mech_switch: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            decision_epoch: default_decision_epoch(),
            regions: default_regions(),
            hot_enter: default_hot_enter(),
            hot_exit: default_hot_exit(),
            min_dwell: default_min_dwell(),
            detour: true,
            mech_switch: true,
        }
    }
}

impl AdaptiveConfig {
    /// Checks the knob invariants; called when the policy is installed.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.decision_epoch == 0 {
            return Err(ConfigError::AdaptivePolicy("decision_epoch must be > 0"));
        }
        if self.regions == 0 {
            return Err(ConfigError::AdaptivePolicy("regions must be > 0"));
        }
        if self.hot_exit > self.hot_enter {
            return Err(ConfigError::AdaptivePolicy(
                "hot_exit must not exceed hot_enter",
            ));
        }
        Ok(())
    }
}

/// One region's occupancy telemetry for a single decision, summed over
/// the routers and NIs the region owns (same quantities as
/// `NetworkTelemetry`, but per region instead of chip-wide).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionSample {
    /// Flits buffered in the region's router input VCs.
    pub buffered_flits: u64,
    /// Messages queued or assembling in the region's NIs.
    pub ni_backlog: u64,
    /// Circuit-table entries held by the region's routers (reported in
    /// traces for diagnosis; not part of the score — entries are standing
    /// capacity, not queued work).
    pub circuit_entries: u64,
    /// Routers in the region (the score normaliser).
    pub routers: u64,
}

impl RegionSample {
    /// The congestion score: queued occupancy per router, fixed-point
    /// ×[`SCORE_SCALE`]. Empty regions score zero.
    pub fn score(&self) -> u64 {
        (self.buffered_flits + self.ni_backlog) * SCORE_SCALE / self.routers.max(1)
    }
}

/// A region's policy state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionMode {
    /// Normal operation: circuits build, DOR routing.
    Calm,
    /// Congested: circuit construction suppressed (when `mech_switch`),
    /// traffic detours around the region's routers (when `detour`).
    Hot,
}

/// One region's verdict from a [`PolicyController::decide`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionDecision {
    /// Region index.
    pub region: usize,
    /// The region's mode *after* this decision.
    pub mode: RegionMode,
    /// `true` when this decision changed the mode.
    pub switched: bool,
    /// The score the decision was based on.
    pub score: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RegionState {
    mode: RegionMode,
    last_switch: Option<Cycle>,
}

/// The deterministic per-region policy state machine (hysteresis +
/// min-dwell). Holds no telemetry itself — samples are handed in, so the
/// controller can be driven (and property-tested) in isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyController {
    cfg: AdaptiveConfig,
    regions: Vec<RegionState>,
}

impl PolicyController {
    /// A controller for `regions` regions, all initially calm.
    pub fn new(cfg: AdaptiveConfig, regions: usize) -> Self {
        PolicyController {
            cfg,
            regions: vec![
                RegionState {
                    mode: RegionMode::Calm,
                    last_switch: None,
                };
                regions
            ],
        }
    }

    /// The installed knobs.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.regions.len()
    }

    /// A region's current mode.
    pub fn mode(&self, region: usize) -> RegionMode {
        self.regions[region].mode
    }

    /// How many regions are currently hot.
    pub fn hot_regions(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.mode == RegionMode::Hot)
            .count() as u64
    }

    /// The dynamic per-region state as `(mode, last_switch)` pairs, for
    /// checkpointing (the knobs travel in the config, not the snapshot).
    pub fn snapshot(&self) -> Vec<(RegionMode, Option<Cycle>)> {
        self.regions
            .iter()
            .map(|r| (r.mode, r.last_switch))
            .collect()
    }

    /// Overwrites the per-region state from a [`PolicyController::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's region count differs from this
    /// controller's (the snapshot belongs to a different configuration).
    pub fn restore(&mut self, snapshot: &[(RegionMode, Option<Cycle>)]) {
        assert_eq!(
            snapshot.len(),
            self.regions.len(),
            "snapshot region count must match the controller's"
        );
        for (st, &(mode, last_switch)) in self.regions.iter_mut().zip(snapshot) {
            st.mode = mode;
            st.last_switch = last_switch;
        }
    }

    /// Runs one decision: applies hysteresis and min-dwell to every
    /// region's sample and returns the per-region verdicts (one per
    /// region, in region order — callers filter on `switched`).
    ///
    /// Pure in the functional sense: identical `(self, now, samples)`
    /// always produce identical verdicts and identical next state.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` differs from the region count.
    pub fn decide(&mut self, now: Cycle, samples: &[RegionSample]) -> Vec<RegionDecision> {
        assert_eq!(
            samples.len(),
            self.regions.len(),
            "one sample per region required"
        );
        let mut out = Vec::with_capacity(samples.len());
        for (region, (st, sample)) in self.regions.iter_mut().zip(samples).enumerate() {
            let score = sample.score();
            let want = match st.mode {
                RegionMode::Calm if score >= self.cfg.hot_enter => RegionMode::Hot,
                RegionMode::Hot if score <= self.cfg.hot_exit => RegionMode::Calm,
                unchanged => unchanged,
            };
            let dwell_ok = st
                .last_switch
                .is_none_or(|t| now.saturating_sub(t) >= self.cfg.min_dwell);
            let switched = want != st.mode && dwell_ok;
            if switched {
                st.mode = want;
                st.last_switch = Some(now);
            }
            out.push(RegionDecision {
                region,
                mode: st.mode,
                switched,
                score,
            });
        }
        out
    }
}

/// Shared read-only view of which routers are congested, handed to every
/// NI tick (alongside `TopologyHealth`) so detour planning can weight
/// congestion as well as faults.
///
/// The `era` counter is the staleness fence for recorded reverse reply
/// paths: it bumps whenever a blocking condition clears (a link or router
/// heals, or a hot region cools), and the NI only rides a recorded path
/// whose era matches — post-heal traffic returns to DOR instead of
/// retracing a detour recorded under conditions that no longer hold.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CongestionMap {
    hot: Vec<bool>,
    hot_count: usize,
    era: u64,
    detour: bool,
    suppress: bool,
}

impl CongestionMap {
    /// An all-calm map over `routers` routers.
    pub fn new(routers: usize) -> Self {
        CongestionMap {
            hot: vec![false; routers],
            hot_count: 0,
            era: 0,
            detour: false,
            suppress: false,
        }
    }

    /// Arms the policy features this map drives: `detour` lets NIs plan
    /// congestion-aware detours around hot routers, `suppress` lets them
    /// skip circuit construction for requests whose reply path crosses a
    /// hot router. Both default off — the map then only carries fault-heal
    /// era bumps and behaves exactly like the pre-adaptive code.
    pub fn set_features(&mut self, detour: bool, suppress: bool) {
        self.detour = detour;
        self.suppress = suppress;
    }

    /// `true` when congestion-aware detours are armed and at least one
    /// router is hot.
    pub fn detour_active(&self) -> bool {
        self.detour && self.hot_count > 0
    }

    /// `true` when path-sensitive circuit suppression is armed and at
    /// least one router is hot.
    pub fn suppress_active(&self) -> bool {
        self.suppress && self.hot_count > 0
    }

    /// Marks router `r` hot or calm.
    pub fn set_hot(&mut self, r: usize, hot: bool) {
        if let Some(slot) = self.hot.get_mut(r) {
            if *slot != hot {
                *slot = hot;
                if hot {
                    self.hot_count += 1;
                } else {
                    self.hot_count -= 1;
                }
            }
        }
    }

    /// Is router `r` hot? Out-of-range routers are calm — the default
    /// (empty) map reports everything calm, which is what makes the
    /// adaptive-off path behave exactly like the seed.
    pub fn is_hot(&self, r: usize) -> bool {
        self.hot.get(r).copied().unwrap_or(false)
    }

    /// `true` when any router is hot (the NI's cheap entry check before
    /// it pays for per-path congestion inspection).
    pub fn any_hot(&self) -> bool {
        self.hot_count > 0
    }

    /// The current staleness era for recorded detour paths.
    pub fn era(&self) -> u64 {
        self.era
    }

    /// Advances the era: previously recorded reverse paths become stale.
    /// Called when a fault heals or a hot region cools.
    pub fn bump_era(&mut self) {
        self.era += 1;
    }

    /// The full dynamic state, for checkpointing.
    pub fn snapshot(&self) -> CongestionSnapshot {
        CongestionSnapshot {
            hot: self.hot.clone(),
            era: self.era,
            detour: self.detour,
            suppress: self.suppress,
        }
    }

    /// Overwrites this map from a [`CongestionMap::snapshot`]. The hot
    /// count is recomputed, so a snapshot is self-consistent by
    /// construction.
    pub fn restore(&mut self, snap: &CongestionSnapshot) {
        self.hot = snap.hot.clone();
        self.hot_count = self.hot.iter().filter(|&&h| h).count();
        self.era = snap.era;
        self.detour = snap.detour;
        self.suppress = snap.suppress;
    }
}

/// Serializable state of a [`CongestionMap`] (the hot count is derived
/// and recomputed on restore).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CongestionSnapshot {
    /// Per-router hot flags.
    pub hot: Vec<bool>,
    /// Staleness era for recorded detour paths.
    pub era: u64,
    /// Detour feature armed.
    pub detour: bool,
    /// Circuit-suppression feature armed.
    pub suppress: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(score_units: u64) -> RegionSample {
        // routers = SCORE_SCALE makes score() == buffered_flits, so the
        // tests can speak threshold units directly.
        RegionSample {
            buffered_flits: score_units,
            ni_backlog: 0,
            circuit_entries: 0,
            routers: SCORE_SCALE,
        }
    }

    #[test]
    fn hysteresis_band_prevents_oscillation() {
        let cfg = AdaptiveConfig {
            hot_enter: 100,
            hot_exit: 50,
            min_dwell: 0,
            ..AdaptiveConfig::default()
        };
        let mut c = PolicyController::new(cfg, 1);
        assert!(c.decide(1, &[sample(100)])[0].switched);
        assert_eq!(c.mode(0), RegionMode::Hot);
        // Scores inside the band (50, 100) keep the current mode.
        assert!(!c.decide(2, &[sample(75)])[0].switched);
        assert_eq!(c.mode(0), RegionMode::Hot);
        assert!(c.decide(3, &[sample(50)])[0].switched);
        assert_eq!(c.mode(0), RegionMode::Calm);
        assert!(!c.decide(4, &[sample(75)])[0].switched);
        assert_eq!(c.mode(0), RegionMode::Calm);
    }

    #[test]
    fn min_dwell_blocks_the_second_switch() {
        let cfg = AdaptiveConfig {
            hot_enter: 100,
            hot_exit: 50,
            min_dwell: 10,
            ..AdaptiveConfig::default()
        };
        let mut c = PolicyController::new(cfg, 1);
        assert!(c.decide(100, &[sample(100)])[0].switched);
        assert!(!c.decide(105, &[sample(0)])[0].switched, "inside dwell");
        assert!(c.decide(110, &[sample(0)])[0].switched, "dwell expired");
    }

    #[test]
    fn validation_rejects_inverted_band() {
        let cfg = AdaptiveConfig {
            hot_enter: 10,
            hot_exit: 20,
            ..AdaptiveConfig::default()
        };
        assert!(cfg.validate().is_err());
        assert!(AdaptiveConfig::default().validate().is_ok());
    }

    #[test]
    fn congestion_map_tracks_hot_count_and_era() {
        let mut m = CongestionMap::new(4);
        assert!(!m.any_hot());
        m.set_hot(2, true);
        m.set_hot(2, true); // idempotent
        assert!(m.any_hot() && m.is_hot(2) && !m.is_hot(0));
        assert!(!m.is_hot(99), "out of range is calm");
        // Hot routers drive nothing until the features are armed.
        assert!(!m.detour_active() && !m.suppress_active());
        m.set_features(true, false);
        assert!(m.detour_active() && !m.suppress_active());
        m.set_features(true, true);
        assert!(m.detour_active() && m.suppress_active());
        m.set_hot(2, false);
        assert!(!m.any_hot());
        let e = m.era();
        m.bump_era();
        assert_eq!(m.era(), e + 1);
    }

    #[test]
    fn empty_region_scores_zero() {
        assert_eq!(RegionSample::default().score(), 0);
    }
}
