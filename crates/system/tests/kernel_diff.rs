//! The differential byte-identity matrix: every host-performance knob —
//! the event kernel (`RC_KERNEL`, idle-skip scheduling) and the in-tick
//! shard count (`RC_SHARDS`, domain-decomposed parallel ticking) — must
//! be observationally indistinguishable from the dense serial reference
//! that ticks every tile every cycle on one thread. Every mechanism
//! version of the paper's Figure 6 grid is run under both kernels on the
//! 4×4 and 8×8 chips — with and without fault injection — and the full
//! serialized `RunResult` (latency histograms, outcome fractions, energy,
//! health, fault counters) must be **byte-identical**. The shard matrix
//! crosses `RC_SHARDS` ∈ {1, 2, 4} with both kernels over
//! {mesh, torus, ring} × {faults off, on}, plus an open-loop overload
//! point and a mid-run dead-link point. Traced runs must additionally
//! produce the identical trace-event *sequence* at every matrix point.

use rcsim_core::MechanismConfig;
use rcsim_system::{
    run_sim_traced_with_kernel, run_sim_with, run_sim_with_kernel, DeadLinkEvent, FaultConfig,
    KernelMode, OpenLoopConfig, SimConfig, StuckPortEvent, TraceConfig,
};

/// Baseline first, then the full Figure 6 grid (Fragmented → Postponed_k).
fn all_mechanisms() -> Vec<MechanismConfig> {
    let mut all = vec![MechanismConfig::baseline()];
    all.extend(MechanismConfig::figure6_grid());
    all
}

/// A quick config small enough to run the whole grid under both kernels.
fn quick(cores: u16, mechanism: MechanismConfig) -> SimConfig {
    SimConfig {
        seed: 0xD1FF,
        warmup_cycles: 500,
        measure_cycles: if cores > 16 { 1_500 } else { 2_500 },
        ..SimConfig::quick(cores, mechanism, "blackscholes")
    }
}

/// A light, deterministic fault mix that exercises link drops,
/// payload corruption and circuit-table corruption without wedging the
/// quick runs. Stuck ports are exercised separately (see
/// [`stuck_ports_agree_on_every_mechanism`]) so their wake-source
/// behaviour is isolated from the probabilistic faults.
fn light_faults(cores: u16) -> FaultConfig {
    FaultConfig {
        // A fault-RNG stream the seed simulator tolerates at this mesh
        // size: some (size, seed) pairs trip the pre-existing wormhole
        // fragility noted above — identically under both kernels — and
        // this differential layer is about kernel equivalence, not about
        // fixing that corner.
        seed: if cores > 16 { 0x5EED1 } else { 0xFA017 },
        link_drop_rate: 0.003,
        link_corrupt_rate: 0.002,
        table_corrupt_rate: 0.001,
        ..FaultConfig::none()
    }
}

/// Runs `cfg` under both kernels and asserts the serialized reports are
/// byte-for-byte identical.
fn assert_kernels_agree(cfg: &SimConfig, label: &str) {
    let dense = run_sim_with_kernel(cfg, KernelMode::Dense).expect("dense run");
    let event = run_sim_with_kernel(cfg, KernelMode::Event).expect("event run");
    let dense_json = serde_json::to_string(&dense).expect("serialize dense");
    let event_json = serde_json::to_string(&event).expect("serialize event");
    assert_eq!(
        dense_json, event_json,
        "dense and event kernels diverged on {label}"
    );
}

/// Runs `cfg` across the full (kernel × shard-count) matrix and asserts
/// every serialized report is byte-identical to the dense serial
/// reference. Shard counts above 1 tick the fabric on worker threads;
/// 4 shards on the 4×4 mesh exercises 2-router domains and boundary
/// exchange on every internal column.
fn assert_matrix_agrees(cfg: &SimConfig, label: &str) {
    let reference = run_sim_with(cfg, KernelMode::Dense, 1).expect("dense serial run");
    let reference = serde_json::to_string(&reference).expect("serialize reference");
    for kernel in [KernelMode::Dense, KernelMode::Event] {
        for shards in [1usize, 2, 4] {
            if kernel == KernelMode::Dense && shards == 1 {
                continue;
            }
            let run = run_sim_with(cfg, kernel, shards).expect("matrix run");
            let run = serde_json::to_string(&run).expect("serialize run");
            assert_eq!(
                reference, run,
                "{kernel:?} × {shards} shards diverged from the dense serial \
                 reference on {label}"
            );
        }
    }
}

#[test]
fn every_mechanism_agrees_on_4x4() {
    for m in all_mechanisms() {
        assert_kernels_agree(&quick(16, m), &format!("{} @ 16 cores", m.label()));
    }
}

#[test]
fn every_mechanism_agrees_on_8x8() {
    for m in all_mechanisms() {
        assert_kernels_agree(&quick(64, m), &format!("{} @ 64 cores", m.label()));
    }
}

#[test]
fn every_mechanism_agrees_on_4x4_under_faults() {
    for m in all_mechanisms() {
        let mut cfg = quick(16, m);
        cfg.faults = light_faults(16);
        assert_kernels_agree(&cfg, &format!("{} @ 16 cores, faults", m.label()));
    }
}

#[test]
fn every_mechanism_agrees_on_8x8_under_faults() {
    for m in all_mechanisms() {
        let mut cfg = quick(64, m);
        cfg.faults = light_faults(64);
        assert_kernels_agree(&cfg, &format!("{} @ 64 cores, faults", m.label()));
    }
}

/// The non-mesh topologies change the port counts, the wake patterns
/// (wraparound neighbours, shared cmesh routers) and the VC layout
/// (dateline classes), so each gets its own dense-vs-event check: a 4×4
/// torus, a cmesh with four tiles per router, and a 16-node ring, across
/// a representative mechanism set, must stay byte-identical.
#[test]
fn every_topology_agrees_on_both_kernels() {
    use rcsim_core::TopologySpec;
    let representative = [
        MechanismConfig::baseline(),
        MechanismConfig::fragmented(),
        MechanismConfig::complete(),
        MechanismConfig::complete_noack(),
    ];
    for spec in [
        TopologySpec::Torus,
        TopologySpec::CMesh { concentration: 4 },
        TopologySpec::Ring,
    ] {
        for m in representative {
            let cfg = quick(16, m).with_topology(spec);
            assert_kernels_agree(
                &cfg,
                &format!("{} @ 16 cores on {}", m.label(), spec.label()),
            );
        }
    }
}

/// Stuck input ports are a wake source of their own (queued arrivals must
/// keep the router's wake time due until the window ends). Every Figure 6
/// mechanism — including the timed ones, whose expired slots at a stuck
/// port used to trip a wormhole stream-order assertion — must survive the
/// window, and both kernels must agree byte for byte.
#[test]
fn stuck_ports_agree_on_every_mechanism() {
    for m in all_mechanisms() {
        let mut cfg = quick(16, m);
        cfg.faults = FaultConfig {
            stuck_ports: vec![StuckPortEvent {
                node: rcsim_core::NodeId(5),
                dir: rcsim_core::Direction::East,
                at: 900,
                duration: 400,
            }],
            ..FaultConfig::none()
        };
        assert_kernels_agree(&cfg, &format!("{} @ 16 cores, stuck port", m.label()));
    }
}

/// Traced runs: the event stream (order **and** content) must match, the
/// multiset view must match (belt and braces: a reordering that happened
/// to cancel in the sequence check would still trip the sorted view), and
/// the traced `RunResult`s must stay byte-identical too.
#[test]
fn traced_event_streams_are_identical() {
    let representative = [
        MechanismConfig::baseline(),
        MechanismConfig::complete_noack(),
        MechanismConfig::slack(2),
    ];
    let trace = TraceConfig {
        capacity: 1 << 20,
        epoch: 50,
    };
    for m in representative {
        for faults in [false, true] {
            let mut cfg = quick(16, m);
            if faults {
                cfg.faults = light_faults(16);
            }
            let (dense, dense_tr) =
                run_sim_traced_with_kernel(&cfg, &trace, KernelMode::Dense).expect("dense run");
            let (event, event_tr) =
                run_sim_traced_with_kernel(&cfg, &trace, KernelMode::Event).expect("event run");
            let label = format!("{} (faults: {faults})", m.label());
            assert_eq!(
                serde_json::to_string(&dense).unwrap(),
                serde_json::to_string(&event).unwrap(),
                "traced reports diverged on {label}"
            );
            assert!(!dense_tr.events.is_empty(), "no events traced on {label}");
            assert_eq!(
                dense_tr.events, event_tr.events,
                "trace-event sequences diverged on {label}"
            );
            let multiset = |evs: &[rcsim_trace::TraceEvent]| {
                let mut v: Vec<String> = evs.iter().map(|e| format!("{e:?}")).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(
                multiset(&dense_tr.events),
                multiset(&event_tr.events),
                "trace-event multisets diverged on {label}"
            );
            assert_eq!(dense_tr.dropped, event_tr.dropped);
        }
    }
}

/// The shard matrix proper: {mesh, torus, ring} × {faults off, on} ×
/// both kernels × `RC_SHARDS` ∈ {1, 2, 4}, all byte-identical to the
/// dense serial reference. The ring is the sharding worst case (every
/// shard boundary is also a dateline-class boundary); the torus adds
/// wraparound links that always cross shard domains.
#[test]
fn shard_matrix_is_byte_identical_on_every_topology() {
    use rcsim_core::TopologySpec;
    for spec in [TopologySpec::Mesh, TopologySpec::Torus, TopologySpec::Ring] {
        for faults in [false, true] {
            let mut cfg = quick(16, MechanismConfig::complete()).with_topology(spec);
            if faults {
                cfg.faults = light_faults(16);
            }
            assert_matrix_agrees(
                &cfg,
                &format!("complete @ 16 cores on {} (faults: {faults})", spec.label()),
            );
        }
    }
}

/// Open-loop overload point: sustained external Poisson arrivals past the
/// admission capacity, so ingress queues, sheds and backpressure are all
/// active while the shards tick. The ingress layer runs serially between
/// ticks, but its release decisions read NI backlogs the sharded tick
/// produced — any divergence would compound immediately.
#[test]
fn shard_matrix_agrees_under_open_loop_overload() {
    let mut ol = OpenLoopConfig::poisson(0.2);
    ol.ingress.tokens_per_kilocycle = 103; // ~0.1/cycle/edge capacity
    ol.ingress.shed_timeout = 800;
    let cfg = SimConfig {
        seed: 0x0BEE,
        warmup_cycles: 500,
        measure_cycles: 2_500,
        open_loop: Some(ol),
        ..SimConfig::quick(16, MechanismConfig::complete_noack(), "blackscholes")
    };
    assert_matrix_agrees(&cfg, "complete_noack @ 16 cores, open-loop overload");
}

/// Mid-run dead-link point: an interior link dies inside the measure
/// window, exercising the fault-onset pre-pass (circuit teardown, purge,
/// reroute) between sharded ticks and the dead-link eating path inside
/// the serial merge's `route_outgoing`.
#[test]
fn shard_matrix_agrees_across_midrun_dead_link() {
    let mut cfg = quick(16, MechanismConfig::complete());
    cfg.faults.dead_links = vec![DeadLinkEvent {
        a: rcsim_core::NodeId(5),
        b: rcsim_core::NodeId(6),
        at: 900,
        duration: None,
    }];
    assert_matrix_agrees(&cfg, "complete @ 16 cores, mid-run dead link");
}

/// Stuck ports under shards: the stuck-port flags are computed in the
/// serial pre-pass and read by the workers, so the window must freeze the
/// same arrivals at every shard count.
#[test]
fn shard_matrix_agrees_across_stuck_port_window() {
    let mut cfg = quick(16, MechanismConfig::complete());
    cfg.faults = FaultConfig {
        stuck_ports: vec![StuckPortEvent {
            node: rcsim_core::NodeId(5),
            dir: rcsim_core::Direction::East,
            at: 900,
            duration: 400,
        }],
        ..FaultConfig::none()
    };
    assert_matrix_agrees(&cfg, "complete @ 16 cores, stuck port, shards");
}

/// Traced shard runs: the event *sequence* — not just the multiset — must
/// be identical at every shard count. Workers stage events into
/// per-component buffers; the serial merge replays them in component
/// order, which must reproduce the serial emission order exactly.
#[test]
fn sharded_trace_event_sequences_are_identical() {
    use rcsim_system::run_sim_traced_with;
    let trace = TraceConfig {
        capacity: 1 << 20,
        epoch: 50,
    };
    for faults in [false, true] {
        let mut cfg = quick(16, MechanismConfig::complete_noack());
        if faults {
            cfg.faults = light_faults(16);
        }
        let (reference, reference_tr) =
            run_sim_traced_with(&cfg, &trace, KernelMode::Event, 1).expect("serial run");
        assert!(!reference_tr.events.is_empty(), "no events traced");
        for shards in [2usize, 4] {
            let (run, tr) =
                run_sim_traced_with(&cfg, &trace, KernelMode::Event, shards).expect("sharded run");
            let label = format!("{shards} shards (faults: {faults})");
            assert_eq!(
                serde_json::to_string(&reference).unwrap(),
                serde_json::to_string(&run).unwrap(),
                "traced reports diverged on {label}"
            );
            assert_eq!(
                reference_tr.events, tr.events,
                "trace-event sequences diverged on {label}"
            );
            assert_eq!(reference_tr.dropped, tr.dropped, "drop counts diverged");
        }
    }
}
