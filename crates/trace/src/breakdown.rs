//! Post-pass: reconstruct per-message latency breakdowns from the raw
//! event stream.
//!
//! The sink records a flat, time-ordered event log; this module replays it
//! and matches packet lifecycles (`NiEnqueue → NiInject → NiEject`) and
//! circuit lifecycles (`CircuitReserve → CircuitConfirm`) back together,
//! splitting end-to-end latency into the phases the paper's Figure 7
//! discussion cares about: time queued at the NI, time spent building the
//! circuit, time in the network — separated by whether the message rode a
//! circuit, took the packet-switched pipeline, or fell back after a fault.

use crate::event::{EventKind, TraceEvent};
use rcsim_stats::LatencyStat;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Histogram geometry for every phase statistic: 5-cycle bins to 1000
/// cycles, matching the NoC's delivery histograms but with more headroom
/// for queueing outliers.
fn phase_stat() -> LatencyStat {
    LatencyStat::new(5.0, 200)
}

/// Per-phase latency statistics reconstructed from a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Enqueue → head injection, all delivered packets.
    pub queueing: LatencyStat,
    /// First reservation write → origin registration, per circuit.
    pub circuit_setup: LatencyStat,
    /// Injection → delivery for packets that rode their own circuit.
    pub transit_circuit: LatencyStat,
    /// Injection → delivery for plain packet-switched packets.
    pub transit_packet: LatencyStat,
    /// Injection → delivery for fault-degraded packets (retransmitted at
    /// least once); injection is the *first* attempt, so retransmission
    /// backoff is included — that is the degradation being measured.
    pub transit_degraded: LatencyStat,
    /// Packets delivered within the trace window.
    pub delivered: u64,
    /// Packets abandoned after exhausting retries.
    pub dropped: u64,
    /// Enqueued packets with no terminal event in the window (still in
    /// flight, or their terminal event was overwritten in the ring).
    pub unresolved: u64,
}

impl Default for LatencyBreakdown {
    fn default() -> Self {
        Self {
            queueing: phase_stat(),
            circuit_setup: phase_stat(),
            transit_circuit: phase_stat(),
            transit_packet: phase_stat(),
            transit_degraded: phase_stat(),
            delivered: 0,
            dropped: 0,
            unresolved: 0,
        }
    }
}

impl LatencyBreakdown {
    /// Replays `events` (in emission order) and accumulates every phase.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut out = LatencyBreakdown::default();
        // packet → (enqueue cycle, first-injection cycle)
        let mut open: HashMap<u64, (Option<u64>, Option<u64>)> = HashMap::new();
        // circuit key → first reservation cycle
        let mut reserving: HashMap<(u16, u64), u64> = HashMap::new();
        for e in events {
            match e.kind {
                EventKind::NiEnqueue { packet, .. } => {
                    open.entry(packet).or_insert((None, None)).0 = Some(e.cycle);
                }
                EventKind::NiInject { packet, .. } => {
                    let slot = &mut open.entry(packet).or_insert((None, None)).1;
                    // Keep the first injection: retransmissions re-inject
                    // the same packet id.
                    if slot.is_none() {
                        *slot = Some(e.cycle);
                    }
                }
                EventKind::NiEject {
                    packet,
                    rode_circuit,
                    retries,
                    ..
                } => {
                    out.delivered += 1;
                    let Some((enq, inj)) = open.remove(&packet) else {
                        continue;
                    };
                    if let (Some(enq), Some(inj)) = (enq, inj) {
                        out.queueing.record((inj - enq) as f64);
                    }
                    // Tile-local deliveries have no injection event; their
                    // transit is the enqueue→eject gap.
                    let start = inj.or(enq);
                    if let Some(start) = start {
                        let transit = (e.cycle - start) as f64;
                        if retries > 0 {
                            out.transit_degraded.record(transit);
                        } else if rode_circuit {
                            out.transit_circuit.record(transit);
                        } else {
                            out.transit_packet.record(transit);
                        }
                    }
                }
                EventKind::PacketDropped { packet, .. } => {
                    out.dropped += 1;
                    open.remove(&packet);
                }
                EventKind::CircuitReserve {
                    requestor, block, ..
                } => {
                    reserving.entry((requestor, block)).or_insert(e.cycle);
                }
                EventKind::CircuitConfirm {
                    requestor, block, ..
                } => {
                    if let Some(start) = reserving.remove(&(requestor, block)) {
                        out.circuit_setup.record((e.cycle - start) as f64);
                    }
                }
                _ => {}
            }
        }
        out.unresolved = open.len() as u64;
        out
    }

    /// Delivered packets whose transit went through a circuit, as a
    /// fraction of all categorized deliveries (0 when none were measured).
    pub fn circuit_ride_fraction(&self) -> f64 {
        let total = self.transit_circuit.count()
            + self.transit_packet.count()
            + self.transit_degraded.count();
        if total == 0 {
            0.0
        } else {
            self.transit_circuit.count() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { cycle, kind }
    }

    #[test]
    fn splits_queueing_from_transit() {
        let events = vec![
            ev(
                10,
                EventKind::NiEnqueue {
                    packet: 1,
                    src: 0,
                    dst: 3,
                    class: "L1_REQ",
                },
            ),
            ev(14, EventKind::NiInject { packet: 1, node: 0 }),
            ev(
                34,
                EventKind::NiEject {
                    packet: 1,
                    node: 3,
                    rode_circuit: false,
                    retries: 0,
                },
            ),
        ];
        let b = LatencyBreakdown::from_events(&events);
        assert_eq!(b.delivered, 1);
        assert_eq!(b.queueing.count(), 1);
        assert!((b.queueing.mean() - 4.0).abs() < 1e-12);
        assert!((b.transit_packet.mean() - 20.0).abs() < 1e-12);
        assert_eq!(b.transit_circuit.count(), 0);
        assert_eq!(b.unresolved, 0);
    }

    #[test]
    fn categorizes_circuit_and_degraded_rides() {
        let mut events = Vec::new();
        for (p, rode, retries) in [(1u64, true, 0u32), (2, false, 2)] {
            events.push(ev(0, EventKind::NiInject { packet: p, node: 0 }));
            events.push(ev(
                50,
                EventKind::NiEject {
                    packet: p,
                    node: 1,
                    rode_circuit: rode,
                    retries,
                },
            ));
        }
        let b = LatencyBreakdown::from_events(&events);
        assert_eq!(b.transit_circuit.count(), 1);
        assert_eq!(b.transit_degraded.count(), 1);
        assert!((b.circuit_ride_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn circuit_setup_is_first_reserve_to_confirm() {
        let events = vec![
            ev(
                5,
                EventKind::CircuitReserve {
                    node: 1,
                    requestor: 0,
                    block: 0x40,
                },
            ),
            ev(
                10,
                EventKind::CircuitReserve {
                    node: 2,
                    requestor: 0,
                    block: 0x40,
                },
            ),
            ev(
                25,
                EventKind::CircuitConfirm {
                    node: 3,
                    requestor: 0,
                    block: 0x40,
                },
            ),
        ];
        let b = LatencyBreakdown::from_events(&events);
        assert_eq!(b.circuit_setup.count(), 1);
        assert!((b.circuit_setup.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn dropped_and_unresolved_are_counted() {
        let events = vec![
            ev(
                0,
                EventKind::NiEnqueue {
                    packet: 1,
                    src: 0,
                    dst: 1,
                    class: "L1_REQ",
                },
            ),
            ev(
                0,
                EventKind::NiEnqueue {
                    packet: 2,
                    src: 0,
                    dst: 1,
                    class: "L1_REQ",
                },
            ),
            ev(
                90,
                EventKind::PacketDropped {
                    packet: 1,
                    retries: 4,
                },
            ),
        ];
        let b = LatencyBreakdown::from_events(&events);
        assert_eq!(b.dropped, 1);
        assert_eq!(b.unresolved, 1);
        assert_eq!(b.delivered, 0);
    }
}
