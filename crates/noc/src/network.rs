//! The whole network: routers, links, NIs and the cycle loop.

use crate::config::NocConfig;
use crate::flit::{Delivered, Flit, PacketId, PacketSpec};
use crate::ni::{Ni, NiOut};
use crate::router::{Outgoing, Router};
use crate::stats::NocStats;
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{ConfigError, Cycle, Direction, NodeId};

/// Messages in flight towards one router.
#[derive(Debug, Default)]
struct RouterInbox {
    /// Flits per input direction, with arrival cycle.
    flits: [Vec<(Cycle, Flit)>; 5],
    /// Credits per *output* direction (they return upstream).
    credits: [Vec<(Cycle, usize)>; 5],
    /// Undo notifications.
    undos: Vec<(Cycle, CircuitKey, NodeId)>,
}

/// Messages in flight towards one NI.
#[derive(Debug, Default)]
struct NiInbox {
    flits: Vec<(Cycle, Flit)>,
    credits: Vec<(Cycle, usize)>,
}

fn drain_due<T>(v: &mut Vec<(Cycle, T)>, now: Cycle) -> Vec<T> {
    let mut due = Vec::new();
    let mut i = 0;
    while i < v.len() {
        if v[i].0 <= now {
            due.push(v.remove(i).1);
        } else {
            i += 1;
        }
    }
    due
}

/// A mesh NoC instance.
///
/// Drive it with [`Network::tick`]; submit packets with
/// [`Network::inject`]; collect arrivals with [`Network::take_delivered`].
/// See the crate docs for a complete example.
pub struct Network {
    cfg: NocConfig,
    routers: Vec<Router>,
    nis: Vec<Ni>,
    router_inboxes: Vec<RouterInbox>,
    ni_inboxes: Vec<NiInbox>,
    delivered: Vec<Vec<Delivered>>,
    stats: NocStats,
    now: Cycle,
    next_packet: u64,
}

impl Network {
    /// Builds the network for a configuration.
    ///
    /// # Errors
    ///
    /// Returns the mechanism's [`ConfigError`] when the configuration is
    /// internally inconsistent (see
    /// [`MechanismConfig::validate`](rcsim_core::MechanismConfig::validate)).
    pub fn new(cfg: NocConfig) -> Result<Self, ConfigError> {
        cfg.mechanism.validate()?;
        let n = cfg.mesh.nodes();
        Ok(Self {
            cfg,
            routers: cfg.mesh.iter().map(|id| Router::new(id, &cfg)).collect(),
            nis: cfg.mesh.iter().map(|id| Ni::new(id, &cfg)).collect(),
            router_inboxes: (0..n).map(|_| RouterInbox::default()).collect(),
            ni_inboxes: (0..n).map(|_| NiInbox::default()).collect(),
            delivered: vec![Vec::new(); n],
            stats: NocStats::default(),
            now: 0,
            next_packet: 0,
        })
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Submits a packet at its source NI. Returns the packet id and, for
    /// replies, whether the packet committed to riding its own complete
    /// circuit — the condition under which the protocol may eliminate the
    /// `L1_DATA_ACK` (§4.6).
    ///
    /// A packet with `src == dst` never enters the network: it is
    /// delivered directly on the next cycle (tile-local traffic).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` are outside the mesh.
    pub fn inject(&mut self, spec: PacketSpec) -> (PacketId, bool) {
        assert!(spec.src.index() < self.cfg.mesh.nodes(), "src out of range");
        assert!(spec.dst.index() < self.cfg.mesh.nodes(), "dst out of range");
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        if spec.src == spec.dst {
            self.delivered[spec.dst.index()].push(Delivered {
                packet: id,
                src: spec.src,
                dst: spec.dst,
                class: spec.class,
                block: spec.block,
                token: spec.token,
                created_at: self.now,
                injected_at: self.now,
                delivered_at: self.now + 1,
                circuit: None,
                rode_circuit: false,
            });
            return (id, false);
        }
        let committed =
            self.nis[spec.src.index()].enqueue(spec, id, self.now, &mut self.stats);
        (id, committed)
    }

    /// Tears down an unused circuit whose origin is `node`'s NI — the
    /// protocol calls this when the L2 forwards a request to an owning L1
    /// instead of replying itself (§4.4). Returns `false` when no such
    /// circuit is registered.
    pub fn undo_circuit(&mut self, node: NodeId, key: CircuitKey) -> bool {
        self.nis[node.index()].undo_circuit(key, &mut self.stats)
    }

    /// `true` when `node`'s NI holds a fully built circuit origin for
    /// `key` (diagnostic / test helper).
    pub fn has_circuit_origin(&self, node: NodeId, key: CircuitKey) -> bool {
        self.nis[node.index()].has_origin(key)
    }

    /// Records an `L1_DATA_ACK` eliminated by the protocol (§4.6) so the
    /// Figure 6 outcome breakdown stays complete.
    pub fn record_eliminated_ack(&mut self) {
        self.stats.record_outcome(crate::stats::CircuitOutcome::Eliminated);
    }

    /// Records a reply outcome classified by the protocol layer (e.g. the
    /// logical reply of a forwarded transaction whose circuit had already
    /// failed mid-path and so was never registered at an NI).
    pub fn record_reply_outcome(&mut self, outcome: crate::stats::CircuitOutcome) {
        self.stats.record_outcome(outcome);
    }

    /// Packets fully received at `node` since the last call.
    pub fn take_delivered(&mut self, node: NodeId) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered[node.index()])
    }

    /// Packets fully received anywhere since the last call, as
    /// `(node, packet)` pairs.
    pub fn take_all_delivered(&mut self) -> Vec<(NodeId, Delivered)> {
        let mut all = Vec::new();
        for (i, v) in self.delivered.iter_mut().enumerate() {
            for d in v.drain(..) {
                all.push((NodeId(i as u16), d));
            }
        }
        all
    }

    /// Advances the network by one clock cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        let n = self.cfg.mesh.nodes();

        // NIs first: they consume flits/credits produced last cycle and
        // inject at most one flit each into their router's local port.
        for i in 0..n {
            let ejected = drain_due(&mut self.ni_inboxes[i].flits, now);
            let credits = drain_due(&mut self.ni_inboxes[i].credits, now);
            let mut out = NiOut::default();
            self.nis[i].tick(now, ejected, credits, &mut self.stats, &mut out);
            for flit in out.flits {
                self.router_inboxes[i].flits[Direction::Local.index()].push((now + 1, flit));
            }
            for (key, dst) in out.undos {
                self.router_inboxes[i].undos.push((now + 1, key, dst));
            }
            self.delivered[i].append(&mut out.delivered);
        }

        // Routers.
        let mut outgoing = Vec::new();
        for i in 0..n {
            let inbox = &mut self.router_inboxes[i];
            let mut arrivals = Vec::new();
            for d in 0..5 {
                for flit in drain_due(&mut inbox.flits[d], now) {
                    arrivals.push((Direction::from_index(d), flit));
                }
            }
            let mut credits = Vec::new();
            for d in 0..5 {
                for vc in drain_due(&mut inbox.credits[d], now) {
                    credits.push((Direction::from_index(d), vc));
                }
            }
            let mut undos = Vec::new();
            let mut j = 0;
            while j < inbox.undos.len() {
                if inbox.undos[j].0 <= now {
                    let (_, k, d) = inbox.undos.remove(j);
                    undos.push((k, d));
                } else {
                    j += 1;
                }
            }
            outgoing.clear();
            self.routers[i].tick(now, arrivals, credits, undos, &mut outgoing);
            self.route_outgoing(NodeId(i as u16), &outgoing);
        }

        self.stats.cycles += 1;
        self.now = now + 1;
    }

    fn route_outgoing(&mut self, from: NodeId, outgoing: &[Outgoing]) {
        for o in outgoing {
            match o {
                Outgoing::Flit { dir, flit, arrive } => {
                    if *dir == Direction::Local {
                        self.ni_inboxes[from.index()].flits.push((*arrive, flit.clone()));
                    } else {
                        let nb = self
                            .cfg
                            .mesh
                            .neighbor(from, *dir)
                            .expect("routing never crosses the mesh edge");
                        self.router_inboxes[nb.index()].flits[dir.opposite().index()]
                            .push((*arrive, flit.clone()));
                    }
                }
                Outgoing::Credit { dir, vc, arrive } => {
                    if *dir == Direction::Local {
                        self.ni_inboxes[from.index()].credits.push((*arrive, *vc));
                    } else {
                        let nb = self
                            .cfg
                            .mesh
                            .neighbor(from, *dir)
                            .expect("credits return along existing links");
                        self.router_inboxes[nb.index()].credits[dir.opposite().index()]
                            .push((*arrive, *vc));
                    }
                }
                Outgoing::Undo {
                    dir,
                    key,
                    dst,
                    arrive,
                } => {
                    let nb = self
                        .cfg
                        .mesh
                        .neighbor(from, *dir)
                        .expect("undo follows the reserved path");
                    self.router_inboxes[nb.index()].undos.push((*arrive, *key, *dst));
                }
            }
        }
    }

    /// Zeroes every statistic (latencies, outcomes, activity, table
    /// counters, cycle count) without disturbing in-flight traffic —
    /// called at the end of a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.stats = NocStats::default();
        for r in &mut self.routers {
            r.activity = Default::default();
            r.circuits.reset_stats();
        }
    }

    /// A snapshot of all statistics, including per-router activity and
    /// circuit-table counters.
    pub fn stats(&self) -> NocStats {
        let mut s = self.stats.clone();
        for r in &self.routers {
            s.activity.merge(&r.activity);
            s.tables.merge(r.circuits.stats());
        }
        s
    }

    /// `true` when nothing is queued or travelling.
    pub fn is_quiescent(&self) -> bool {
        self.nis.iter().all(|ni| ni.backlog() == 0)
            && self
                .router_inboxes
                .iter()
                .all(|ib| ib.flits.iter().all(Vec::is_empty) && ib.undos.is_empty())
            && self.ni_inboxes.iter().all(|ib| ib.flits.is_empty())
            && self.stats.total_injected() == self.stats.total_delivered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcsim_core::{MechanismConfig, Mesh, MessageClass};

    fn net(mechanism: MechanismConfig) -> Network {
        let mesh = Mesh::new(4, 4).unwrap();
        Network::new(NocConfig::paper_baseline(mesh, mechanism)).unwrap()
    }

    fn run(net: &mut Network, cycles: u64) {
        for _ in 0..cycles {
            net.tick();
        }
    }

    #[test]
    fn single_packet_crosses_baseline() {
        let mut n = net(MechanismConfig::baseline());
        n.inject(PacketSpec::new(NodeId(0), NodeId(15), MessageClass::L1Request));
        run(&mut n, 60);
        let d = n.take_delivered(NodeId(15));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].src, NodeId(0));
        assert_eq!(d[0].class, MessageClass::L1Request);
        assert!(n.is_quiescent());
    }

    #[test]
    fn request_hop_latency_is_five_cycles() {
        // Uncontended: injection + 5 cycles/hop + ejection pipeline.
        let mut n = net(MechanismConfig::baseline());
        n.inject(PacketSpec::new(NodeId(0), NodeId(1), MessageClass::L1Request));
        run(&mut n, 40);
        let d = n.take_delivered(NodeId(1));
        assert_eq!(d.len(), 1);
        let lat1 = d[0].delivered_at - d[0].injected_at;

        let mut n = net(MechanismConfig::baseline());
        n.inject(PacketSpec::new(NodeId(0), NodeId(3), MessageClass::L1Request));
        run(&mut n, 60);
        let d = n.take_delivered(NodeId(3));
        let lat3 = d[0].delivered_at - d[0].injected_at;
        assert_eq!(
            lat3 - lat1,
            10,
            "each extra hop must cost 5 cycles (got {lat1} for 1 hop, {lat3} for 3)"
        );
    }

    #[test]
    fn local_delivery_bypasses_network() {
        let mut n = net(MechanismConfig::baseline());
        n.inject(PacketSpec::new(NodeId(5), NodeId(5), MessageClass::L1Request));
        let d = n.take_delivered(NodeId(5));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn multiflit_packet_arrives_whole() {
        let mut n = net(MechanismConfig::baseline());
        n.inject(PacketSpec::new(NodeId(0), NodeId(12), MessageClass::WbData));
        run(&mut n, 80);
        let d = n.take_delivered(NodeId(12));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].class, MessageClass::WbData);
    }

    #[test]
    fn many_packets_all_arrive() {
        let mut n = net(MechanismConfig::baseline());
        let mut expected = [0usize; 16];
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s != d {
                    n.inject(
                        PacketSpec::new(NodeId(s), NodeId(d), MessageClass::L1Request)
                            .with_block((s as u64) << 16 | d as u64),
                    );
                    expected[d as usize] += 1;
                }
            }
        }
        run(&mut n, 3000);
        for d in 0..16u16 {
            assert_eq!(
                n.take_delivered(NodeId(d)).len(),
                expected[d as usize],
                "node {d}"
            );
        }
        assert!(n.is_quiescent());
    }
}
