//! Tree pseudo-LRU replacement (both cache levels use pseudo-LRU,
//! Table 2).

use serde::{Deserialize, Serialize};

/// Tree-PLRU state for one cache set of up to 64 ways (ways must be a
/// power of two).
///
/// # Examples
///
/// ```
/// use rcsim_protocol::TreePlru;
///
/// let mut plru = TreePlru::new(4);
/// plru.touch(0);
/// plru.touch(1);
/// plru.touch(2);
/// plru.touch(3);
/// // After touching all ways in order, way 0 is the pseudo-LRU victim.
/// assert_eq!(plru.victim(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreePlru {
    /// Internal tree bits; bit i covers internal node i (root = 1), with
    /// 0 = left subtree older, 1 = right subtree older.
    bits: u64,
    ways: usize,
}

impl TreePlru {
    /// Creates PLRU state for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is a power of two in `1..=64`.
    pub fn new(ways: usize) -> Self {
        assert!(
            ways.is_power_of_two() && (1..=64).contains(&ways),
            "ways must be a power of two in 1..=64"
        );
        Self { bits: 0, ways }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Marks `way` as most-recently used.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: usize) {
        assert!(way < self.ways, "way {way} out of range");
        let mut node = 1usize;
        let mut span = self.ways;
        while span > 1 {
            span /= 2;
            let right = way & span != 0;
            // Point the bit AWAY from the touched way.
            if right {
                self.bits &= !(1 << node);
            } else {
                self.bits |= 1 << node;
            }
            node = node * 2 + usize::from(right);
        }
    }

    /// The pseudo-least-recently-used way.
    pub fn victim(&self) -> usize {
        let mut node = 1usize;
        let mut way = 0usize;
        let mut span = self.ways;
        while span > 1 {
            span /= 2;
            let right = self.bits & (1 << node) != 0;
            if right {
                way |= span;
            }
            node = node * 2 + usize::from(right);
        }
        way
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_way() {
        let mut p = TreePlru::new(1);
        assert_eq!(p.victim(), 0);
        p.touch(0);
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn two_ways_alternate() {
        let mut p = TreePlru::new(2);
        p.touch(0);
        assert_eq!(p.victim(), 1);
        p.touch(1);
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn victim_is_never_most_recent() {
        for ways in [2usize, 4, 8, 16] {
            let mut p = TreePlru::new(ways);
            for i in 0..1000usize {
                let w = (i * 7 + 3) % ways;
                p.touch(w);
                assert_ne!(p.victim(), w, "{ways} ways, touched {w}");
            }
        }
    }

    #[test]
    fn sequential_touch_16_ways() {
        let mut p = TreePlru::new(16);
        for w in 0..16 {
            p.touch(w);
        }
        assert_eq!(p.victim(), 0);
        p.touch(0);
        assert_eq!(p.victim(), 8);
    }

    #[test]
    fn plru_approximates_lru_on_scan() {
        // Scanning ways in order repeatedly, the victim always lies in the
        // half least recently touched.
        let mut p = TreePlru::new(8);
        for w in 0..8 {
            p.touch(w);
        }
        for w in 0..4 {
            p.touch(w);
        }
        assert!(p.victim() >= 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        TreePlru::new(3);
    }
}
