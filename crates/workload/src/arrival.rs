//! Seeded open-loop arrival processes for external "datacenter tile"
//! traffic (ROADMAP item 3).
//!
//! A closed-loop core only issues a new request once the previous one
//! resolves, so offered load self-limits; an *open-loop* source keeps
//! injecting at its configured rate no matter how congested the fabric
//! is — which is exactly the regime where admission control and bounded
//! queues earn their keep. Each edge node owns one [`ArrivalStream`],
//! polled once per cycle in a fixed order, so the arrival sequence is a
//! pure function of `(seed, edge index, edge count, process)` — bit-
//! identical across kernels (`RC_KERNEL`) and sweep worker counts
//! (`RC_JOBS`).
//!
//! Rates are arrivals **per cycle per edge** and are realised by
//! Bernoulli thinning: at most one arrival per edge per cycle, with the
//! per-cycle probability clamped to `[0, 1]`. That keeps the draw count
//! per cycle fixed (one state draw where the process needs it, one coin,
//! one destination draw only on arrival), which is what makes the stream
//! deterministic under idle-skipping kernels.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Domain separator mixed into the RNG seed so arrival streams never
/// alias the [`crate::CoreTrace`] streams built from the same user seed.
const ARRIVAL_SEED_DOMAIN: u64 = 0x4f50_454e_4c4f_4f50; // "OPENLOOP"

/// The shape of one edge's open-loop arrival process.
///
/// All variants are stationary-seeded: the same configuration and seed
/// reproduce the same arrival stream exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: Bernoulli(`rate`) each cycle, i.e. geometric
    /// inter-arrival times — the discrete-time Poisson stand-in.
    Poisson {
        /// Mean arrivals per cycle per edge.
        rate: f64,
    },
    /// Two-state on/off (Markov-modulated) arrivals: bursts at `rate_on`
    /// for a uniform `[1, 2*mean_on]`-cycle dwell, then quiet at
    /// `rate_off` for a uniform `[1, 2*mean_off]`-cycle dwell.
    Bursty {
        /// Arrival rate while the source is bursting.
        rate_on: f64,
        /// Arrival rate between bursts (often 0).
        rate_off: f64,
        /// Mean burst duration in cycles.
        mean_on: u64,
        /// Mean quiet duration in cycles.
        mean_off: u64,
    },
    /// A deterministic triangular ramp with period `period`: the rate
    /// climbs linearly from 0 to `peak_rate` over the first half-period
    /// and back down over the second — a compressed diurnal load curve.
    Diurnal {
        /// Rate at the top of the ramp.
        peak_rate: f64,
        /// Full ramp period in cycles.
        period: u64,
    },
}

impl ArrivalProcess {
    /// Long-run mean arrivals per cycle per edge (clamping ignored), for
    /// labelling sweep points by offered load.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Bursty {
                rate_on,
                rate_off,
                mean_on,
                mean_off,
            } => {
                let (on, off) = (mean_on.max(1) as f64, mean_off.max(1) as f64);
                (rate_on * on + rate_off * off) / (on + off)
            }
            ArrivalProcess::Diurnal { peak_rate, .. } => peak_rate / 2.0,
        }
    }
}

/// One external arrival produced by [`ArrivalStream::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExternalArrival {
    /// Uniform draw in `[0, servers)` selecting the destination tile
    /// (the caller maps it onto its server list).
    pub dst_index: usize,
    /// Per-edge arrival sequence number, for building collision-free
    /// external block addresses.
    pub seq: u64,
}

/// On/off modulation state for [`ArrivalProcess::Bursty`].
#[derive(Debug, Clone, PartialEq)]
struct BurstState {
    on: bool,
    /// Cycles left in the current dwell.
    remaining: u64,
}

/// A seeded per-edge arrival source. Poll it exactly once per cycle.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    process: ArrivalProcess,
    rng: ChaCha8Rng,
    burst: Option<BurstState>,
    seq: u64,
}

impl ArrivalStream {
    /// A stream for edge `edge_index` of `edge_count`, derived from the
    /// run seed. Distinct edges get independent ChaCha streams; the same
    /// triple reproduces the same stream bit for bit.
    pub fn new(process: ArrivalProcess, seed: u64, edge_index: usize, edge_count: usize) -> Self {
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&seed.to_le_bytes());
        seed_bytes[8..16].copy_from_slice(&(edge_index as u64).to_le_bytes());
        seed_bytes[16..24].copy_from_slice(&(edge_count as u64).to_le_bytes());
        seed_bytes[24..32].copy_from_slice(&ARRIVAL_SEED_DOMAIN.to_le_bytes());
        let mut rng = ChaCha8Rng::from_seed(seed_bytes);
        let burst = match process {
            ArrivalProcess::Bursty {
                mean_on, mean_off, ..
            } => {
                // Start in a random phase so edges don't burst in lockstep.
                let on = rng.gen_bool(0.5);
                let mean = if on { mean_on } else { mean_off };
                Some(BurstState {
                    on,
                    remaining: rng.gen_range(1..=2 * mean.max(1)),
                })
            }
            _ => None,
        };
        Self {
            process,
            rng,
            burst,
            seq: 0,
        }
    }

    /// The instantaneous per-cycle arrival probability at `now`,
    /// advancing any modulation state. Clamped to `[0, 1]`.
    fn rate_at(&mut self, now: u64) -> f64 {
        let raw = match self.process {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Bursty {
                rate_on,
                rate_off,
                mean_on,
                mean_off,
            } => {
                let state = self.burst.as_mut().expect("bursty stream has state");
                if state.remaining == 0 {
                    state.on = !state.on;
                    let mean = if state.on { mean_on } else { mean_off };
                    state.remaining = self.rng.gen_range(1..=2 * mean.max(1));
                }
                state.remaining -= 1;
                if state.on {
                    rate_on
                } else {
                    rate_off
                }
            }
            ArrivalProcess::Diurnal { peak_rate, period } => {
                let period = period.max(2);
                let phase = (now % period) as f64 / period as f64;
                peak_rate * (1.0 - (2.0 * phase - 1.0).abs())
            }
        };
        raw.clamp(0.0, 1.0)
    }

    /// Polls the stream for cycle `now`. Returns the arrival (if any)
    /// with a destination drawn uniformly from `[0, servers)`.
    ///
    /// Must be called once per cycle in cycle order — the RNG draw
    /// sequence *is* the process definition.
    pub fn poll(&mut self, now: u64, servers: usize) -> Option<ExternalArrival> {
        let p = self.rate_at(now);
        if p <= 0.0 || !self.rng.gen_bool(p) {
            return None;
        }
        let dst_index = if servers > 1 {
            self.rng.gen_range(0..servers)
        } else {
            0
        };
        let seq = self.seq;
        self.seq += 1;
        Some(ExternalArrival { dst_index, seq })
    }

    /// Total arrivals produced so far.
    pub fn produced(&self) -> u64 {
        self.seq
    }

    /// The full dynamic state, for checkpointing (the process itself is
    /// configuration and travels with the run config, not the snapshot).
    pub fn snapshot(&self) -> ArrivalSnapshot {
        let (rng_state, rng_stream) = self.rng.state_words();
        ArrivalSnapshot {
            rng_state,
            rng_stream,
            burst: self.burst.as_ref().map(|b| (b.on, b.remaining)),
            seq: self.seq,
        }
    }

    /// Overwrites the dynamic state from an [`ArrivalStream::snapshot`],
    /// continuing the exact stream the snapshot was taken from.
    pub fn restore(&mut self, snap: &ArrivalSnapshot) {
        self.rng = ChaCha8Rng::from_state_words(snap.rng_state, snap.rng_stream);
        self.burst = snap
            .burst
            .map(|(on, remaining)| BurstState { on, remaining });
        self.seq = snap.seq;
    }
}

/// Serializable dynamic state of an [`ArrivalStream`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalSnapshot {
    /// RNG state word.
    pub rng_state: u64,
    /// RNG stream word.
    pub rng_stream: u64,
    /// Burst modulation `(on, cycles remaining)`, for bursty processes.
    pub burst: Option<(bool, u64)>,
    /// Next arrival sequence number.
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut s: ArrivalStream, cycles: u64) -> Vec<(u64, ExternalArrival)> {
        (0..cycles)
            .filter_map(|t| s.poll(t, 12).map(|a| (t, a)))
            .collect()
    }

    #[test]
    fn same_seed_same_stream() {
        let p = ArrivalProcess::Bursty {
            rate_on: 0.4,
            rate_off: 0.01,
            mean_on: 50,
            mean_off: 200,
        };
        let a = drain(ArrivalStream::new(p, 7, 2, 4), 5_000);
        let b = drain(ArrivalStream::new(p, 7, 2, 4), 5_000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_edges_decorrelate() {
        let p = ArrivalProcess::Poisson { rate: 0.2 };
        let a = drain(ArrivalStream::new(p, 7, 0, 4), 2_000);
        let b = drain(ArrivalStream::new(p, 7, 1, 4), 2_000);
        assert_ne!(a, b);
    }

    #[test]
    fn poisson_rate_is_roughly_honoured() {
        let p = ArrivalProcess::Poisson { rate: 0.1 };
        let n = drain(ArrivalStream::new(p, 1, 0, 1), 50_000).len() as f64;
        let expect = 0.1 * 50_000.0;
        assert!((n - expect).abs() < 0.1 * expect, "got {n}, want ~{expect}");
    }

    #[test]
    fn diurnal_ramp_peaks_mid_period() {
        let p = ArrivalProcess::Diurnal {
            peak_rate: 0.5,
            period: 10_000,
        };
        let arrivals = drain(ArrivalStream::new(p, 3, 0, 1), 10_000);
        let mid = arrivals
            .iter()
            .filter(|(t, _)| (2_500..7_500).contains(t))
            .count();
        let tails = arrivals.len() - mid;
        assert!(mid > 2 * tails, "mid {mid} vs tails {tails}");
    }

    #[test]
    fn mean_rate_summaries() {
        assert_eq!(ArrivalProcess::Poisson { rate: 0.25 }.mean_rate(), 0.25);
        let b = ArrivalProcess::Bursty {
            rate_on: 0.4,
            rate_off: 0.0,
            mean_on: 100,
            mean_off: 300,
        };
        assert!((b.mean_rate() - 0.1).abs() < 1e-12);
        let d = ArrivalProcess::Diurnal {
            peak_rate: 0.5,
            period: 1000,
        };
        assert!((d.mean_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn seq_numbers_are_dense_and_ordered() {
        let p = ArrivalProcess::Poisson { rate: 0.5 };
        let arrivals = drain(ArrivalStream::new(p, 9, 1, 2), 1_000);
        for (i, (_, a)) in arrivals.iter().enumerate() {
            assert_eq!(a.seq, i as u64);
            assert!(a.dst_index < 12);
        }
    }
}
