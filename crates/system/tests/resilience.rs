//! Full-system permanent-fault acceptance layer (DESIGN.md §10): a chip
//! with permanently dead links or routers must finish its run with every
//! coherence request answered — requests detour, replies retrace the
//! recorded reverse path, circuits over the dead region are torn down and
//! rebuilt elsewhere, and (when the NoC's own retransmissions are turned
//! off) the L1 reissue timeout re-drives lost requests. The degraded
//! chip must also stay deterministic: dense and event kernels produce
//! byte-identical `RunResult`s, and repeated runs are reproducible.

use rcsim_core::{MechanismConfig, NodeId};
use rcsim_system::{
    run_sim, run_sim_with_kernel, DeadLinkEvent, DeadRouterEvent, KernelMode, SimConfig,
};

/// A 4×4 `Complete` configuration long enough for circuits to form and
/// misses to recycle several times.
fn complete_4x4() -> SimConfig {
    SimConfig {
        seed: 0xFA17,
        warmup_cycles: 1_000,
        measure_cycles: 8_000,
        ..SimConfig::quick(16, MechanismConfig::complete(), "mix")
    }
}

/// One interior horizontal link of the 4×4 mesh, dead from `at` on.
fn dead_interior_link(at: u64) -> DeadLinkEvent {
    DeadLinkEvent {
        a: NodeId(5),
        b: NodeId(6),
        at,
        duration: None,
    }
}

/// The ISSUE's acceptance criterion: a `Complete` run with one
/// permanently dead interior link completes without a stall, abandons
/// nothing, and actually reroutes traffic (the fault is on a used path).
#[test]
fn complete_run_survives_permanently_dead_interior_link() {
    let mut cfg = complete_4x4();
    cfg.faults.dead_links = vec![dead_interior_link(0)];
    let r = run_sim(&cfg).expect("run completes despite the dead link");
    assert!(!r.health.stalled, "degraded chip stalled");
    assert_eq!(
        r.health.faults.packets_abandoned, 0,
        "coherence requests were abandoned"
    );
    assert!(
        r.health.faults.packets_rerouted > 0,
        "no packet ever detoured — the dead link was not exercised"
    );
    assert_eq!(r.health.dead_links, vec![(NodeId(5), NodeId(6))]);
    assert!(r.instructions > 0, "cores made no progress");
}

/// Same chip, but the link dies mid-measure so live circuits cross it at
/// onset: the teardown machinery must fire and the run must still finish
/// with nothing abandoned.
#[test]
fn mid_run_onset_tears_circuits_and_recovers() {
    let mut cfg = complete_4x4();
    cfg.faults.dead_links = vec![dead_interior_link(5_000)];
    let r = run_sim(&cfg).expect("run completes despite mid-run onset");
    assert!(!r.health.stalled);
    assert_eq!(r.health.faults.packets_abandoned, 0);
    assert!(r.health.faults.packets_rerouted > 0);
    assert!(
        r.health.faults.circuits_torn > 0,
        "onset under live circuit traffic tore nothing down"
    );
}

/// With the NoC's end-to-end retransmissions disabled, lost packets stay
/// lost at the transport level — only the protocol's L1 reissue timeout
/// can complete the affected misses. Link drops guarantee losses happen
/// (a single dead link only eats what is in flight at onset, which can
/// be nothing); the run must still finish, the transport must actually
/// abandon packets, and the reissue counter must show the path fired.
#[test]
fn l1_reissue_recovers_when_noc_retries_are_disabled() {
    let mut cfg = complete_4x4();
    cfg.measure_cycles = 12_000;
    cfg.faults.seed = 0xFA17;
    cfg.faults.link_drop_rate = 0.02;
    cfg.faults.max_retries = 0;
    cfg.reissue_timeout = Some(1_000);
    let r = run_sim(&cfg).expect("run completes on the reissue path");
    assert!(!r.health.stalled);
    assert!(
        r.health.faults.packets_abandoned > 0,
        "no packet was ever lost — the reissue path was not exercised"
    );
    assert!(
        r.health.l1_reissues > 0,
        "reissue timeout never fired with transport recovery off"
    );
}

/// A dead router is survivable too as long as no L2 home or core is
/// unreachable-critical: here router 5 dies at onset and the rest of the
/// chip routes around it. Traffic to/from node 5 itself is abandoned at
/// the transport and re-driven by the reissue layer, so the run may show
/// abandons but must not stall.
#[test]
fn dead_router_degrades_without_stalling() {
    let mut cfg = complete_4x4();
    cfg.faults.dead_routers = vec![DeadRouterEvent {
        node: NodeId(5),
        at: 2_000,
        duration: None,
    }];
    cfg.reissue_timeout = Some(1_000);
    let r = run_sim(&cfg).expect("run completes with a dead router");
    assert!(!r.health.stalled, "dead router wedged the chip");
    assert_eq!(r.health.dead_routers, vec![NodeId(5)]);
    assert!(r.instructions > 0);
}

/// Every Figure 6 mechanism — circuits on or off, timed or not — must
/// complete with a dead interior link: detours, reservation refusal near
/// the degraded region and teardown are mechanism-independent safety
/// nets, and no configuration may abandon a request or stall.
#[test]
fn every_mechanism_survives_a_dead_link() {
    let mut all = vec![MechanismConfig::baseline()];
    all.extend(MechanismConfig::figure6_grid());
    for m in all {
        let cfg = SimConfig {
            seed: 0xD1FF,
            warmup_cycles: 500,
            measure_cycles: 2_500,
            faults: rcsim_system::FaultConfig {
                dead_links: vec![dead_interior_link(0)],
                ..rcsim_system::FaultConfig::none()
            },
            ..SimConfig::quick(16, m, "blackscholes")
        };
        let r =
            run_sim(&cfg).unwrap_or_else(|e| panic!("{} died with a dead link: {e}", m.label()));
        assert!(!r.health.stalled, "{} stalled", m.label());
        assert_eq!(
            r.health.faults.packets_abandoned,
            0,
            "{} abandoned requests",
            m.label()
        );
    }
}

/// Dense and event kernels must stay byte-identical on degraded
/// topologies — the fault schedule, detour planner, teardown pass and
/// reissue loop are all deterministic and kernel-independent.
#[test]
fn kernels_agree_on_degraded_topology() {
    for onset in [0, 5_000] {
        let mut cfg = complete_4x4();
        cfg.faults.dead_links = vec![dead_interior_link(onset)];
        let dense = run_sim_with_kernel(&cfg, KernelMode::Dense).expect("dense run");
        let event = run_sim_with_kernel(&cfg, KernelMode::Event).expect("event run");
        assert_eq!(
            serde_json::to_string(&dense).unwrap(),
            serde_json::to_string(&event).unwrap(),
            "kernels diverged with a dead link at cycle {onset}"
        );
    }
}

/// Repeated runs of the same degraded point are byte-identical — the
/// resilience sweep's results cannot depend on scheduling order or
/// worker count (`RC_JOBS` hands whole points to workers, so per-point
/// reproducibility is exactly what parallel invariance needs).
#[test]
fn degraded_runs_are_reproducible() {
    let mut cfg = complete_4x4();
    cfg.faults.dead_links = vec![dead_interior_link(3_000)];
    cfg.faults.max_retries = 0;
    cfg.reissue_timeout = Some(1_000);
    let a = run_sim(&cfg).expect("first run");
    let b = run_sim(&cfg).expect("second run");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "identical configs produced different results"
    );
}
