//! Figure 9 — system speedup per configuration vs the baseline, with
//! standard error across applications.

use rcsim_bench::{
    bench_row, cores_list, experiment_apps, run_points, save_bench_summary, save_json,
    BenchSummary, PointSpec,
};
use rcsim_core::MechanismConfig;
use rcsim_stats::Accumulator;

fn main() {
    println!("Figure 9 — system speedup over the baseline\n");
    println!("Paper landmarks: gains are small (the network is lightly loaded)");
    println!("but consistent; NoAck versions beat their ack-ful counterparts;");
    println!("SlackDelay_1 is best (+4.4% @16, +6.0% @64); Complete_NoAck gets");
    println!("+3.8% / +4.8%; everything sits close to Ideal.\n");

    // One baseline per (app, seed): comparisons stay seed-paired. The
    // whole grid is one submission-ordered job list for the sweep runner.
    let points: Vec<(String, u64)> = experiment_apps()
        .iter()
        .flat_map(|app| {
            rcsim_bench::seeds()
                .into_iter()
                .map(move |s| (app.clone(), s))
        })
        .collect();
    let swept: Vec<MechanismConfig> = MechanismConfig::key_configs()
        .into_iter()
        .filter(|m| *m != MechanismConfig::baseline())
        .collect();
    let mut specs = Vec::new();
    for cores in cores_list() {
        for (app, s) in &points {
            specs.push(PointSpec::new(cores, MechanismConfig::baseline(), app, *s));
        }
        for mechanism in &swept {
            for (app, s) in &points {
                specs.push(PointSpec::new(cores, *mechanism, app, *s));
            }
        }
    }
    let all = run_points(&specs);
    let per_cores = points.len() * (1 + swept.len());

    let mut raw = Vec::new();
    let mut summary = BenchSummary::new("fig9");
    for (ci, cores) in cores_list().into_iter().enumerate() {
        let block = &all[ci * per_cores..(ci + 1) * per_cores];
        let (baselines, rest) = block.split_at(points.len());
        let mut mech_chunks = rest.chunks(points.len());
        println!("== {cores} cores ==");
        println!("{:<22} {:>10} {:>9}", "configuration", "speedup", "stderr");
        for mechanism in MechanismConfig::key_configs() {
            if mechanism == MechanismConfig::baseline() {
                let mut row = bench_row("Baseline", cores, baselines);
                row.extra.insert("speedup".into(), 1.0);
                summary.push(row);
                continue;
            }
            let runs = mech_chunks.next().expect("grid-aligned result chunks");
            let mut acc = Accumulator::new();
            for (r, base) in runs.iter().zip(baselines) {
                acc.add(r.speedup_over(base));
            }
            let mut row = bench_row(&mechanism.label(), cores, runs);
            row.extra.insert("speedup".into(), acc.mean());
            row.extra.insert("stderr".into(), acc.std_err());
            summary.push(row);
            println!(
                "{:<22} {:>10.3} {:>9.3}  {}",
                mechanism.label(),
                acc.mean(),
                acc.std_err(),
                rcsim_bench::bar(acc.mean() - 1.0, 0.15, 30),
            );
            raw.push((cores, mechanism.label(), acc.mean(), acc.std_err()));
        }
        println!();
    }
    save_json("fig9", &raw);
    save_bench_summary(&mut summary);
}
