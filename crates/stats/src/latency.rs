//! One accumulation path for latency-style metrics: mean/CI from a Welford
//! accumulator and p50/p99 tails from a fixed-width histogram, fed by a
//! single `record` call.
//!
//! Before this type existed every consumer kept an [`Accumulator`] *and* a
//! [`Histogram`] side by side and had to remember to feed both; a missed
//! update desynchronised the mean from the tails. `LatencyStat` owns both
//! and keeps them consistent by construction.

use crate::{Accumulator, Histogram};
use serde::{Deserialize, Serialize};

/// A latency statistic with exact moments and binned tails.
///
/// # Examples
///
/// ```
/// use rcsim_stats::LatencyStat;
///
/// let mut lat = LatencyStat::new(5.0, 100);
/// for x in [10.0, 12.0, 14.0, 200.0] {
///     lat.record(x);
/// }
/// assert_eq!(lat.count(), 4);
/// assert!((lat.mean() - 59.0).abs() < 1e-12);
/// assert!(lat.p50().unwrap() <= 15.0);
/// assert!(lat.p99().unwrap() >= 200.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStat {
    acc: Accumulator,
    hist: Histogram,
}

impl LatencyStat {
    /// A statistic whose histogram has `bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not strictly positive or `bins` is zero.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        Self {
            acc: Accumulator::new(),
            hist: Histogram::new(bin_width, bins),
        }
    }

    /// Records one observation into both the moments and the distribution.
    pub fn record(&mut self, x: f64) {
        self.acc.add(x);
        self.hist.record(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.acc.count()
    }

    /// Exact arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.acc.mean()
    }

    /// CI95 half-width of the mean.
    pub fn ci95_half_width(&self) -> f64 {
        self.acc.ci95_half_width()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.acc.min()
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.acc.max()
    }

    /// Approximate quantile from the histogram (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.hist.quantile(q)
    }

    /// Approximate median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Approximate 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Approximate 99.9th percentile. Like every histogram quantile this
    /// saturates at the overflow-bin edge, so callers tracking deep tails
    /// should size the histogram range generously.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// The underlying moments accumulator.
    pub fn accumulator(&self) -> &Accumulator {
        &self.acc
    }

    /// The underlying distribution.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Merges another statistic recorded with the same histogram geometry.
    ///
    /// # Panics
    ///
    /// Panics if the bin configuration differs.
    pub fn merge(&mut self, other: &LatencyStat) {
        self.acc.merge(&other.acc);
        self.hist.merge(&other.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_record_feeds_both_paths() {
        let mut s = LatencyStat::new(1.0, 10);
        for i in 0..10 {
            s.record(i as f64 + 0.5);
        }
        assert_eq!(s.count(), 10);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.p50(), Some(5.0));
        assert_eq!(s.histogram().count(), s.accumulator().count());
    }

    #[test]
    fn empty_stat_is_well_defined() {
        let s = LatencyStat::new(5.0, 10);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p50(), None);
        assert_eq!(s.p99(), None);
    }

    #[test]
    fn p999_sits_at_or_above_p99() {
        let mut s = LatencyStat::new(1.0, 2000);
        for i in 0..1000 {
            s.record(i as f64 + 0.5);
        }
        let (p99, p999) = (s.p99().unwrap(), s.p999().unwrap());
        assert!(p999 >= p99, "p999 {p999} < p99 {p99}");
        assert_eq!(p999, 999.0);
        assert!(LatencyStat::new(1.0, 10).p999().is_none());
    }

    #[test]
    fn merge_keeps_paths_consistent() {
        let mut a = LatencyStat::new(1.0, 10);
        a.record(1.0);
        let mut b = LatencyStat::new(1.0, 10);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
        assert_eq!(a.histogram().count(), 2);
    }
}
